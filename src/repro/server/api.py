"""Request/response dataclasses of the SeeSaw service.

The paper's deployment has a browser UI talking to a server layer (the "query
aligner", Figure 3).  This reproduction keeps that layer in-process, but the
message shapes are preserved so a thin HTTP wrapper could be added without
touching the core library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.data.geometry import BoundingBox

PROTOCOL_VERSION = "v1"
"""URL prefix of the versioned wire protocol (``GET /v1/...``).  Bumped only
on breaking changes; within a version, additions are announced through the
``revision`` counter and ``GET /v1/capabilities``."""

PROTOCOL_REVISION = 4
"""Monotonic feature counter within the protocol version.  Clients that need
a newly added capability compare against this instead of sniffing routes.

Revision history: 1 — initial /v1 surface (streaming, idempotency, paging,
batch-next); 2 — metrics exposition (``GET /v1/metrics``), ``tracing`` and
``metrics_exposition`` capability flags, ``seconds_per_round`` in the
session-listing telemetry; 3 — resilience surface: ``X-Deadline-Ms``
propagation with the typed 504 (``deadline_exceeded``), ``Retry-After`` on
429/503 (mirrored as ``retry_after_seconds`` in envelope details),
admission-control shedding, the drain state in ``/healthz``
(``state``/``uptime_seconds``/``in_flight``), and the
``deadline_propagation``/``admission_control``/``graceful_drain``/
``retry_hints`` capability flags; 4 — live datasets: the ``/v1/datasets``
routes (list, describe, upsert, delete, force-merge), the
``dataset_version`` pin on session start, ``dataset_versions`` plus the
``live_datasets`` flag in capabilities, and ``dataset_generations`` in
``/healthz``."""


@dataclass(frozen=True)
class StartSessionRequest:
    """Start a new search session on a registered dataset."""

    dataset: str
    text_query: str
    batch_size: int = 3
    multiscale: bool = True
    dataset_version: "int | None" = None
    """Pin the session to one retained dataset version for reproducibility.
    ``None`` (the default) follows the newest version.  Pinning requires the
    multiscale index (the live tier maintains only that path) and fails with
    a typed 404 once the version ages out of the retention window."""


@dataclass(frozen=True)
class DatasetInfo:
    """One row of ``GET /v1/datasets``: the registry manifest view."""

    name: str
    version: int
    generation: int
    image_count: int
    delta_rows: int
    tombstones: int
    merges_completed: int
    retained_versions: "tuple[int, ...]" = ()


@dataclass(frozen=True)
class ResultItem:
    """One image returned to the UI, with the patch that matched."""

    image_id: int
    score: float
    box_x: float
    box_y: float
    box_width: float
    box_height: float

    @staticmethod
    def from_box(image_id: int, score: float, box: BoundingBox) -> "ResultItem":
        """Build an item from an internal bounding box."""
        return ResultItem(
            image_id=image_id,
            score=score,
            box_x=box.x,
            box_y=box.y,
            box_width=box.width,
            box_height=box.height,
        )


@dataclass(frozen=True)
class NextResultsResponse:
    """A batch of results for the UI to render."""

    session_id: str
    items: Sequence[ResultItem]
    total_shown: int
    positives_found: int


@dataclass(frozen=True)
class BoxPayload:
    """One user-drawn box, in image pixel coordinates."""

    x: float
    y: float
    width: float
    height: float

    def to_bounding_box(self) -> BoundingBox:
        """Convert to the internal geometry type."""
        return BoundingBox(self.x, self.y, self.width, self.height)


@dataclass(frozen=True)
class FeedbackRequest:
    """Feedback for one image of the current batch."""

    session_id: str
    image_id: int
    relevant: bool
    boxes: Sequence[BoxPayload] = field(default_factory=tuple)


@dataclass(frozen=True)
class SessionInfo:
    """Summary of a session's progress."""

    session_id: str
    dataset: str
    text_query: str
    total_shown: int
    positives_found: int
    rounds: int


@dataclass(frozen=True)
class SessionListEntry:
    """One row of ``GET /v1/sessions``: progress summary plus telemetry."""

    info: SessionInfo
    idle_seconds: float
    lookup_seconds: float
    update_seconds: float
    seconds_per_round: float = 0.0
    """Mean round latency this session has observed (lookup + update credit
    per completed round) — the per-session cumulative stat the obs PR
    surfaces; 0.0 before the first round completes."""


@dataclass(frozen=True)
class SessionPage:
    """One cursor-delimited page of the session listing.

    ``next_cursor`` is an opaque token; ``None`` means this page reaches the
    end of the listing *as of this request* (sessions started later appear
    on a fresh listing, never retroactively inside an already-read page).
    """

    sessions: Sequence[SessionListEntry]
    next_cursor: "str | None"
