"""Transport-agnostic request router for the SeeSaw service.

The :class:`SeeSawApp` maps a decoded transport request to a
:class:`~repro.server.middleware.Response`.  It owns URL parsing, codec
invocation, the middleware pipeline, and the exception→envelope mapping; it
knows nothing about sockets, which keeps the whole routing layer
unit-testable without binding a port.

Two route families share one set of handlers:

``/v1`` — the versioned wire protocol
-------------------------------------
``GET  /v1/healthz``                    liveness + registry summary
``GET  /v1/capabilities``               negotiated features, limits, topology
``GET  /v1/metrics``                    metrics exposition (Prometheus text,
                                        ``?format=json`` for JSON)
``GET  /v1/sessions``                   cursor-paged session listing
``POST /v1/sessions``                   start a session
``POST /v1/sessions/batch-next``        fused next batches for many sessions
``GET  /v1/sessions/{id}``              session progress summary
``GET  /v1/sessions/{id}/next``         next result batch (``?count=N``)
``POST /v1/sessions/{id}/feedback``     submit feedback (idempotency keys)
``DELETE /v1/sessions/{id}``            close a session
``GET  /v1/datasets``                   registry manifests of every dataset
``GET  /v1/datasets/{name}``            one dataset's manifest
``POST /v1/datasets/{name}/upsert``     add/replace images (live tier)
``POST /v1/datasets/{name}/delete``     delete images (live tier)
``POST /v1/datasets/{name}/merge``      force a delta-segment compaction

`/v1` errors use the structured envelope of :mod:`repro.server.errors`
(``{code, message, retryable, details}``); ``next`` and ``batch-next``
stream chunked NDJSON when the client asks for it (``Accept:
application/x-ndjson`` or ``?stream=ndjson``).

Legacy unversioned routes
-------------------------
The pre-`/v1` surface (``POST /sessions``, ``GET /healthz``, ...) stays
mounted as a thin adapter over the same handlers, preserving its original
response shapes — including the ``{"error": {"type", "message"}}`` envelope
— so existing clients keep working unchanged.
"""

from __future__ import annotations

import logging
import time
from typing import Any, Iterator, Sequence
from urllib.parse import parse_qs, urlsplit

import math

from repro.exceptions import (
    DeadlineExceededError,
    RateLimitedError,
    ReproError,
    ServiceOverloadedError,
    TransportError,
    UnknownResourceError,
)
from repro.server.api import (
    PROTOCOL_VERSION,
    NextResultsResponse,
    SessionInfo,
)
from repro.server.codec import (
    decode_batch_next_request,
    decode_delete_request,
    decode_feedback_request,
    decode_start_session_request,
    decode_upsert_request,
    encode_batch_next_response,
    encode_next_results_response,
    encode_result_item,
    encode_session_info,
    encode_session_page,
    parse_json,
    validate_count,
)
from repro.server.errors import encode_error
from repro.server.manager import SessionManager
from repro.server.middleware import (
    ACCESS_LOGGER_NAME,
    AccessLogMiddleware,
    AdmissionControlMiddleware,
    DeadlineMiddleware,
    InFlightTracker,
    Middleware,
    MiddlewarePipeline,
    RateLimitMiddleware,
    Request,
    RequestIdMiddleware,
    Response,
    emit_access_record,
    record_request_metrics,
    route_template,
)


def error_payload(kind: str, message: str) -> "dict[str, object]":
    """The legacy error envelope every unversioned non-2xx response carries."""
    return {"error": {"type": kind, "message": message}}


def default_middlewares(manager: SessionManager) -> "list[Middleware]":
    """The standard pipeline: ids, logs, limits, deadlines, admission, chaos.

    Outermost first.  Rate limiting sits before deadlines and admission —
    a client over its own budget is rejected by the cheapest check; the
    deadline scope opens before admission so even the shed path observes
    the request's budget.  The admission tracker is registered with the
    manager (``/healthz`` reports the live in-flight count) and its
    overload transitions drive the service's graceful-degradation hook.
    """
    config = manager.service.config
    middlewares: "list[Middleware]" = [
        RequestIdMiddleware(),
        AccessLogMiddleware(
            registry=manager.service.metrics,
            slow_request_ms=config.telemetry.slow_request_ms,
        ),
    ]
    if config.rate_limit_rps > 0:
        middlewares.append(
            RateLimitMiddleware(config.rate_limit_rps, config.rate_limit_burst)
        )
    middlewares.append(DeadlineMiddleware(config.request_deadline_ms))
    tracker = InFlightTracker(
        limit=config.max_in_flight,
        on_overload=manager.service.set_overload_degraded,
    )
    manager.attach_inflight_tracker(tracker)
    middlewares.append(
        AdmissionControlMiddleware(tracker, registry=manager.service.metrics)
    )
    if config.faults is not None and config.faults.any_faults:
        from repro.faults.middleware import ChaosMiddleware

        middlewares.append(
            ChaosMiddleware(config.faults, registry=manager.service.metrics)
        )
    return middlewares


class SeeSawApp:
    """Routes decoded transport requests into a :class:`SessionManager`."""

    def __init__(
        self,
        manager: SessionManager,
        middlewares: "Sequence[Middleware] | None" = None,
    ) -> None:
        self.manager = manager
        if middlewares is None:
            middlewares = default_middlewares(manager)
        self.pipeline = MiddlewarePipeline(middlewares)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        target: str,
        body: "bytes | None" = None,
        headers: "dict[str, str] | None" = None,
        client: "str | None" = None,
    ) -> "tuple[int, dict[str, object]]":
        """Dispatch one request; always returns ``(status, payload)``.

        The original (pre-`/v1`) entry point, kept for embedders and tests
        that drive the app without a socket.  A streaming response is
        materialized into ``{"stream": [record, ...]}`` — only the HTTP
        transport, which calls :meth:`handle_request` directly, can write
        actual chunked NDJSON.
        """
        response = self.handle_request(
            Request(
                method=method,
                target=target,
                body=body,
                headers=headers or {},
                client=client,
            )
        )
        if response.stream is not None:
            return response.status, {"stream": list(response.stream)}
        if response.text is not None:
            return response.status, {"text": response.text}
        assert response.payload is not None
        return response.status, response.payload

    def handle_request(self, request: Request) -> Response:
        """Full entry point: middleware pipeline around the router."""
        started = time.perf_counter()
        try:
            return self.pipeline.run(request, self._endpoint)
        except Exception as exc:
            # Errors raised by the pipeline itself (rate limiting, a broken
            # custom middleware) — everything the router raises is already
            # mapped inside _endpoint.  The pipeline was abandoned
            # mid-flight, so the observability middlewares never saw a
            # response: restore the request-id echo and emit the same
            # complete access record and registry counts a handled request
            # gets, or exactly the throttled traffic would be the part
            # missing from the logs and the metrics.
            duration_ms = (time.perf_counter() - started) * 1000.0
            response = self._error_response(request, exc)
            if request.request_id is not None:
                response.headers.setdefault(
                    RequestIdMiddleware.HEADER, request.request_id
                )
            emit_access_record(
                logging.getLogger(ACCESS_LOGGER_NAME),
                request,
                response.status,
                duration_ms,
                stage="middleware",
            )
            record_request_metrics(
                self.manager.service.metrics,
                request,
                response.status,
                duration_ms / 1000.0,
                rejected=True,
            )
            return response

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _endpoint(self, request: Request) -> Response:
        parts = urlsplit(request.target)
        segments = [segment for segment in parts.path.split("/") if segment]
        query = parse_qs(parts.query)
        method = request.method.upper()
        try:
            if segments[:1] == [PROTOCOL_VERSION]:
                return self._route_v1(request, method, segments[1:], query)
            return self._route_legacy(request, method, segments, query)
        except Exception as exc:
            return self._error_response(request, exc)

    def _error_response(self, request: Request, exc: BaseException) -> Response:
        """Encode one raised exception for the request's route family."""
        return self._finish_error(request, exc, self._encode_exception(request, exc))

    def _encode_exception(self, request: Request, exc: BaseException) -> Response:
        if _is_v1(request.target):
            status, payload = encode_error(exc, request_id=request.request_id)
            return Response(status, payload)
        # The legacy envelope, bit-compatible with the pre-`/v1` server.
        if isinstance(exc, TransportError):
            return Response(400, error_payload("TransportError", str(exc)))
        if isinstance(exc, UnknownResourceError):
            return Response(404, error_payload("UnknownResourceError", str(exc)))
        if isinstance(exc, ServiceOverloadedError):
            return Response(503, error_payload("ServiceOverloadedError", str(exc)))
        if isinstance(exc, RateLimitedError):
            # Post-dates the legacy protocol, so there is no legacy shape to
            # preserve: keep the envelope style, use the proper status.
            return Response(429, error_payload("RateLimitedError", str(exc)))
        if isinstance(exc, DeadlineExceededError):
            # Post-dates the legacy protocol too: same envelope style, 504.
            return Response(504, error_payload("DeadlineExceededError", str(exc)))
        if isinstance(exc, ReproError):
            return Response(400, error_payload(type(exc).__name__, str(exc)))
        return Response(500, error_payload("InternalError", str(exc)))

    def _finish_error(
        self, request: Request, exc: BaseException, response: Response
    ) -> Response:
        """Cross-family error trimmings: Retry-After header, 504 counter."""
        retry_after = getattr(exc, "retry_after_seconds", None)
        if retry_after is not None and response.status in (429, 503):
            # HTTP Retry-After is whole seconds; round up so a client that
            # honours it exactly never lands before the hinted instant.
            response.headers.setdefault(
                "Retry-After", str(max(1, math.ceil(float(retry_after))))
            )
        if isinstance(exc, DeadlineExceededError):
            self.manager.service.metrics.counter(
                "seesaw_deadline_exceeded_total",
                "Requests failed with the typed 504: the propagated budget "
                "ran out before the work finished, by route.",
                labels=("route",),
            ).labels(route_template(request.target)).inc()
        return response

    def _route_legacy(
        self,
        request: Request,
        method: str,
        segments: "list[str]",
        query: "dict[str, list[str]]",
    ) -> Response:
        """The unversioned routes: a thin adapter over the shared handlers."""
        if segments == ["healthz"] and method == "GET":
            return Response(200, self.manager.health())

        if segments == ["sessions"] and method == "POST":
            info = self._start_session(request.body)
            return Response(201, encode_session_info(info))

        if segments == ["sessions", "batch-next"] and method == "POST":
            outcomes = self._batch_next(request.body)
            # Always 200: per-session failures ride inside the envelope so
            # one bad session id cannot fail the rest of the cohort.
            return Response(200, encode_batch_next_response(outcomes))

        if len(segments) == 2 and segments[0] == "sessions":
            session_id = segments[1]
            if method == "GET":
                return Response(
                    200, encode_session_info(self.manager.session_info(session_id))
                )
            if method == "DELETE":
                self.manager.close_session(session_id)
                return Response(200, {"closed": session_id})

        if len(segments) == 3 and segments[0] == "sessions":
            session_id = segments[1]
            if segments[2] == "next" and method == "GET":
                response = self._next_results(session_id, query)
                return Response(200, encode_next_results_response(response))
            if segments[2] == "feedback" and method == "POST":
                info = self._give_feedback(session_id, request.body)
                return Response(200, encode_session_info(info))

        raise UnknownResourceError(f"No route for {method} /{'/'.join(segments)}")

    def _route_v1(
        self,
        request: Request,
        method: str,
        segments: "list[str]",
        query: "dict[str, list[str]]",
    ) -> Response:
        """The versioned `/v1` routes."""
        if segments == ["healthz"] and method == "GET":
            return Response(200, self.manager.health())

        if segments == ["capabilities"] and method == "GET":
            return Response(200, self.manager.capabilities())

        if segments == ["metrics"] and method == "GET":
            if _wants_metrics_json(request, query):
                return Response(200, self.manager.metrics_json())
            return Response(200, text=self.manager.metrics_text())

        if segments == ["sessions"] and method == "GET":
            page = self.manager.list_sessions(
                cursor=_str_param(query, "cursor"),
                limit=_int_param(query, "limit"),
            )
            return Response(200, encode_session_page(page))

        if segments == ["sessions"] and method == "POST":
            info = self._start_session(request.body)
            return Response(201, encode_session_info(info))

        if segments == ["sessions", "batch-next"] and method == "POST":
            outcomes = self._batch_next(request.body)
            if _wants_ndjson(request, query):
                return Response(200, stream=_batch_stream(outcomes))
            return Response(200, _encode_batch_outcomes_v1(outcomes))

        if len(segments) == 2 and segments[0] == "sessions":
            session_id = segments[1]
            if method == "GET":
                return Response(
                    200, encode_session_info(self.manager.session_info(session_id))
                )
            if method == "DELETE":
                self.manager.close_session(session_id)
                return Response(200, {"closed": session_id})

        if len(segments) == 3 and segments[0] == "sessions":
            session_id = segments[1]
            if segments[2] == "next" and method == "GET":
                response = self._next_results(session_id, query)
                if _wants_ndjson(request, query):
                    return Response(200, stream=_next_stream(response))
                return Response(200, encode_next_results_response(response))
            if segments[2] == "feedback" and method == "POST":
                info = self._give_feedback(
                    session_id,
                    request.body,
                    idempotency_key=request.header("Idempotency-Key"),
                )
                return Response(200, encode_session_info(info))

        if segments == ["datasets"] and method == "GET":
            return Response(200, {"datasets": self.manager.list_datasets()})

        if len(segments) == 2 and segments[0] == "datasets" and method == "GET":
            return Response(200, self.manager.describe_dataset(segments[1]))

        if len(segments) == 3 and segments[0] == "datasets" and method == "POST":
            name, action = segments[1], segments[2]
            if action == "upsert":
                images = decode_upsert_request(parse_json(request.body))
                return Response(200, self.manager.upsert_images(name, images))
            if action == "delete":
                image_ids = decode_delete_request(parse_json(request.body))
                return Response(200, self.manager.delete_images(name, image_ids))
            if action == "merge":
                return Response(200, self.manager.force_merge(name))

        raise UnknownResourceError(
            f"No route for {method} /v1/{'/'.join(segments)}"
        )

    # ------------------------------------------------------------------
    # shared handlers (one implementation behind both route families)
    # ------------------------------------------------------------------
    def _start_session(self, body: "bytes | None") -> SessionInfo:
        return self.manager.start_session(decode_start_session_request(parse_json(body)))

    def _next_results(
        self, session_id: str, query: "dict[str, list[str]]"
    ) -> NextResultsResponse:
        count = _int_param(query, "count")
        if count is not None:
            validate_count(count)
        return self.manager.next_results(session_id, count)

    def _give_feedback(
        self,
        session_id: str,
        body: "bytes | None",
        idempotency_key: "str | None" = None,
    ) -> SessionInfo:
        request = decode_feedback_request(parse_json(body), session_id=session_id)
        return self.manager.give_feedback(request, idempotency_key=idempotency_key)

    def _batch_next(
        self, body: "bytes | None"
    ) -> "list[NextResultsResponse | ReproError]":
        entries = decode_batch_next_request(parse_json(body))
        return self.manager.batch_next(entries)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _is_v1(target: str) -> bool:
    path = urlsplit(target).path
    return [s for s in path.split("/") if s][:1] == [PROTOCOL_VERSION]


def _str_param(query: "dict[str, list[str]]", name: str) -> "str | None":
    values = query.get(name)
    return values[-1] if values else None


def _int_param(query: "dict[str, list[str]]", name: str) -> "int | None":
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[-1])
    except ValueError as exc:
        raise TransportError(
            f"Query parameter '{name}' must be an integer, got '{values[-1]}'"
        ) from exc


def _wants_metrics_json(request: Request, query: "dict[str, list[str]]") -> bool:
    """Format negotiation for `/v1/metrics`: Prometheus text by default.

    ``?format=json`` (or an ``Accept: application/json`` header) selects the
    JSON exposition; ``?format=prometheus`` forces the text format.
    """
    fmt = _str_param(query, "format")
    if fmt is not None:
        if fmt not in ("prometheus", "json"):
            raise TransportError(
                f"Query parameter 'format' must be 'prometheus' or 'json', "
                f"got '{fmt}'"
            )
        return fmt == "json"
    return "application/json" in (request.header("Accept") or "")


def _wants_ndjson(request: Request, query: "dict[str, list[str]]") -> bool:
    stream = _str_param(query, "stream")
    if stream is not None:
        if stream not in ("ndjson", "json"):
            raise TransportError(
                f"Query parameter 'stream' must be 'ndjson' or 'json', "
                f"got '{stream}'"
            )
        return stream == "ndjson"
    return "application/x-ndjson" in (request.header("Accept") or "")


def _next_stream(response: NextResultsResponse) -> "Iterator[dict[str, Any]]":
    """NDJSON records for one result batch: meta, one line per item, end.

    The engine computes the whole batch before the first byte is written
    (errors therefore still arrive as plain JSON envelopes with a real
    status code); streaming buys incremental *rendering* — a UI paints the
    first result while the rest of a large batch is still on the wire.
    """
    yield {
        "kind": "meta",
        "session_id": response.session_id,
        "item_count": len(response.items),
        "total_shown": response.total_shown,
        "positives_found": response.positives_found,
    }
    for item in response.items:
        yield {"kind": "item", "item": encode_result_item(item)}
    yield {"kind": "end"}


def _batch_stream(
    outcomes: "Sequence[NextResultsResponse | ReproError]",
) -> "Iterator[dict[str, Any]]":
    """NDJSON records for a batch-next cohort: meta, one line per outcome."""
    yield {"kind": "meta", "outcome_count": len(outcomes)}
    for index, outcome in enumerate(outcomes):
        yield {"kind": "outcome", "index": index, **_encode_outcome_v1(outcome)}
    yield {"kind": "end"}


def _encode_outcome_v1(
    outcome: "NextResultsResponse | BaseException",
) -> "dict[str, Any]":
    if isinstance(outcome, BaseException):
        _, envelope = encode_error(outcome)
        return {"ok": False, "error": envelope["error"]}
    return {"ok": True, "result": encode_next_results_response(outcome)}


def _encode_batch_outcomes_v1(
    outcomes: "Sequence[NextResultsResponse | ReproError]",
) -> "dict[str, Any]":
    """The `/v1` batch envelope: per-item results or structured errors."""
    return {"results": [_encode_outcome_v1(outcome) for outcome in outcomes]}
