"""Transport-agnostic request router for the SeeSaw service.

The :class:`SeeSawApp` maps ``(method, path, body)`` to a status code and a
JSON-serializable payload.  It owns URL parsing, codec invocation, and the
exception→status mapping; it knows nothing about sockets, which keeps the
whole routing layer unit-testable without binding a port.

Endpoints
---------
``GET  /healthz``                    liveness + registry summary
``POST /sessions``                   start a session (StartSessionRequest body)
``POST /sessions/batch-next``        fused next batches for many sessions
``GET  /sessions/{id}``              session progress summary
``GET  /sessions/{id}/next``         next result batch (optional ``?count=N``)
``POST /sessions/{id}/feedback``     submit feedback (FeedbackRequest body)
``DELETE /sessions/{id}``            close a session
"""

from __future__ import annotations

from urllib.parse import parse_qs, urlsplit

from repro.exceptions import (
    ReproError,
    ServiceOverloadedError,
    TransportError,
    UnknownResourceError,
)
from repro.server.codec import (
    decode_batch_next_request,
    decode_feedback_request,
    decode_start_session_request,
    encode_batch_next_response,
    encode_next_results_response,
    encode_session_info,
    parse_json,
)
from repro.server.manager import SessionManager


def error_payload(kind: str, message: str) -> "dict[str, object]":
    """The uniform error envelope every non-2xx response carries."""
    return {"error": {"type": kind, "message": message}}


class SeeSawApp:
    """Routes decoded HTTP requests into a :class:`SessionManager`."""

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def handle(
        self, method: str, target: str, body: "bytes | None" = None
    ) -> "tuple[int, dict[str, object]]":
        """Dispatch one request; always returns ``(status, payload)``."""
        parts = urlsplit(target)
        segments = [segment for segment in parts.path.split("/") if segment]
        query = parse_qs(parts.query)
        try:
            return self._route(method.upper(), segments, query, body)
        except TransportError as exc:
            return 400, error_payload("TransportError", str(exc))
        except UnknownResourceError as exc:
            return 404, error_payload("UnknownResourceError", str(exc))
        except ServiceOverloadedError as exc:
            return 503, error_payload("ServiceOverloadedError", str(exc))
        except ReproError as exc:
            return 400, error_payload(type(exc).__name__, str(exc))
        except Exception as exc:  # pragma: no cover - defensive catch-all
            return 500, error_payload("InternalError", str(exc))

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(
        self,
        method: str,
        segments: "list[str]",
        query: "dict[str, list[str]]",
        body: "bytes | None",
    ) -> "tuple[int, dict[str, object]]":
        if segments == ["healthz"] and method == "GET":
            return 200, self.manager.health()

        if segments == ["sessions"] and method == "POST":
            request = decode_start_session_request(parse_json(body))
            info = self.manager.start_session(request)
            return 201, encode_session_info(info)

        if segments == ["sessions", "batch-next"] and method == "POST":
            entries = decode_batch_next_request(parse_json(body))
            outcomes = self.manager.batch_next(entries)
            # Always 200: per-session failures ride inside the envelope so
            # one bad session id cannot fail the rest of the cohort.
            return 200, encode_batch_next_response(outcomes)

        if len(segments) == 2 and segments[0] == "sessions":
            session_id = segments[1]
            if method == "GET":
                return 200, encode_session_info(self.manager.session_info(session_id))
            if method == "DELETE":
                self.manager.close_session(session_id)
                return 200, {"closed": session_id}

        if len(segments) == 3 and segments[0] == "sessions":
            session_id = segments[1]
            if segments[2] == "next" and method == "GET":
                count = self._count_param(query)
                response = self.manager.next_results(session_id, count)
                return 200, encode_next_results_response(response)
            if segments[2] == "feedback" and method == "POST":
                request = decode_feedback_request(
                    parse_json(body), session_id=session_id
                )
                info = self.manager.give_feedback(request)
                return 200, encode_session_info(info)

        return 404, error_payload(
            "UnknownResourceError",
            f"No route for {method} /{'/'.join(segments)}",
        )

    @staticmethod
    def _count_param(query: "dict[str, list[str]]") -> "int | None":
        values = query.get("count")
        if not values:
            return None
        try:
            count = int(values[-1])
        except ValueError as exc:
            raise TransportError(
                f"Query parameter 'count' must be an integer, got '{values[-1]}'"
            ) from exc
        if count < 1:
            raise TransportError(f"Query parameter 'count' must be >= 1, got {count}")
        return count
