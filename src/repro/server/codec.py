"""JSON codecs for the service API dataclasses.

Each request/response dataclass in :mod:`repro.server.api` gets an explicit
encoder (dataclass → plain dict) and decoder (plain dict → dataclass).
Decoders validate shapes and types and raise :class:`TransportError` with a
message naming the offending field, so the HTTP layer can return a precise
400 instead of a stack trace.
"""

from __future__ import annotations

import base64
import binascii
import json
from collections.abc import Mapping, Sequence
from typing import Any

from repro.data.geometry import BoundingBox
from repro.data.image import ObjectInstance, SyntheticImage
from repro.exceptions import DatasetError, TransportError
from repro.server.api import (
    BoxPayload,
    DatasetInfo,
    FeedbackRequest,
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    SessionListEntry,
    SessionPage,
    StartSessionRequest,
)

MAX_RESULT_COUNT = 1024
"""Upper bound on a single ``next``/``batch-next`` result count.  Values
above it are rejected at the app boundary with a structured 400: a count in
the millions would otherwise reach the engine and pin a worker on one
request-sized top-k for the whole corpus."""

MAX_PAGE_LIMIT = 500
"""Upper bound on one ``GET /v1/sessions`` page."""


def validate_count(count: int, field: str = "count") -> int:
    """Bound-check a next-results count (both the query param and the batch
    body go through here, so every transport rejects identically)."""
    if count < 1:
        raise TransportError(f"Field '{field}' must be >= 1, got {count}")
    if count > MAX_RESULT_COUNT:
        raise TransportError(
            f"Field '{field}' must be <= {MAX_RESULT_COUNT}, got {count}"
        )
    return count


# ---------------------------------------------------------------------------
# field helpers
# ---------------------------------------------------------------------------
def _require(data: Mapping[str, Any], field: str) -> Any:
    if field not in data:
        raise TransportError(f"Missing required field '{field}'")
    return data[field]


def _as_str(value: Any, field: str) -> str:
    if not isinstance(value, str):
        raise TransportError(f"Field '{field}' must be a string")
    return value


def _as_int(value: Any, field: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise TransportError(f"Field '{field}' must be an integer")
    return value


def _as_float(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TransportError(f"Field '{field}' must be a number")
    return float(value)


def _as_bool(value: Any, field: str) -> bool:
    if not isinstance(value, bool):
        raise TransportError(f"Field '{field}' must be a boolean")
    return value


def _as_mapping(value: Any, context: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise TransportError(f"{context} must be a JSON object")
    return value


def _as_sequence(value: Any, field: str) -> Sequence[Any]:
    if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
        raise TransportError(f"Field '{field}' must be an array")
    return value


# ---------------------------------------------------------------------------
# per-type codecs
# ---------------------------------------------------------------------------
def encode_start_session_request(request: StartSessionRequest) -> "dict[str, Any]":
    payload: "dict[str, Any]" = {
        "dataset": request.dataset,
        "text_query": request.text_query,
        "batch_size": request.batch_size,
        "multiscale": request.multiscale,
    }
    # Added at protocol revision 4; omitted when unset so revision-3 servers
    # keep accepting unpinned starts from newer clients.
    if request.dataset_version is not None:
        payload["dataset_version"] = request.dataset_version
    return payload


def decode_start_session_request(data: Any) -> StartSessionRequest:
    data = _as_mapping(data, "StartSessionRequest")
    dataset_version: "int | None" = None
    if data.get("dataset_version") is not None:
        dataset_version = _as_int(data["dataset_version"], "dataset_version")
    return StartSessionRequest(
        dataset=_as_str(_require(data, "dataset"), "dataset"),
        text_query=_as_str(_require(data, "text_query"), "text_query"),
        batch_size=_as_int(data.get("batch_size", 3), "batch_size"),
        multiscale=_as_bool(data.get("multiscale", True), "multiscale"),
        dataset_version=dataset_version,
    )


def encode_box_payload(box: BoxPayload) -> "dict[str, Any]":
    return {"x": box.x, "y": box.y, "width": box.width, "height": box.height}


def decode_box_payload(data: Any) -> BoxPayload:
    data = _as_mapping(data, "Box")
    return BoxPayload(
        x=_as_float(_require(data, "x"), "x"),
        y=_as_float(_require(data, "y"), "y"),
        width=_as_float(_require(data, "width"), "width"),
        height=_as_float(_require(data, "height"), "height"),
    )


def encode_feedback_request(request: FeedbackRequest) -> "dict[str, Any]":
    return {
        "session_id": request.session_id,
        "image_id": request.image_id,
        "relevant": request.relevant,
        "boxes": [encode_box_payload(box) for box in request.boxes],
    }


def decode_feedback_request(
    data: Any, session_id: "str | None" = None
) -> FeedbackRequest:
    """Decode a feedback body; ``session_id`` from the URL wins over the body."""
    data = _as_mapping(data, "FeedbackRequest")
    if session_id is None:
        session_id = _as_str(_require(data, "session_id"), "session_id")
    return FeedbackRequest(
        session_id=session_id,
        image_id=_as_int(_require(data, "image_id"), "image_id"),
        relevant=_as_bool(_require(data, "relevant"), "relevant"),
        boxes=tuple(
            decode_box_payload(item)
            for item in _as_sequence(data.get("boxes", ()), "boxes")
        ),
    )


def encode_result_item(item: ResultItem) -> "dict[str, Any]":
    return {
        "image_id": item.image_id,
        "score": item.score,
        "box": {
            "x": item.box_x,
            "y": item.box_y,
            "width": item.box_width,
            "height": item.box_height,
        },
    }


def decode_result_item(data: Any) -> ResultItem:
    data = _as_mapping(data, "ResultItem")
    box = _as_mapping(_require(data, "box"), "Field 'box'")
    return ResultItem(
        image_id=_as_int(_require(data, "image_id"), "image_id"),
        score=_as_float(_require(data, "score"), "score"),
        box_x=_as_float(_require(box, "x"), "box.x"),
        box_y=_as_float(_require(box, "y"), "box.y"),
        box_width=_as_float(_require(box, "width"), "box.width"),
        box_height=_as_float(_require(box, "height"), "box.height"),
    )


def encode_next_results_response(response: NextResultsResponse) -> "dict[str, Any]":
    return {
        "session_id": response.session_id,
        "items": [encode_result_item(item) for item in response.items],
        "total_shown": response.total_shown,
        "positives_found": response.positives_found,
    }


def decode_next_results_response(data: Any) -> NextResultsResponse:
    data = _as_mapping(data, "NextResultsResponse")
    return NextResultsResponse(
        session_id=_as_str(_require(data, "session_id"), "session_id"),
        items=tuple(
            decode_result_item(item)
            for item in _as_sequence(_require(data, "items"), "items")
        ),
        total_shown=_as_int(_require(data, "total_shown"), "total_shown"),
        positives_found=_as_int(_require(data, "positives_found"), "positives_found"),
    )


def decode_batch_next_request(data: Any) -> "list[tuple[str, int | None]]":
    """Decode a ``POST /sessions/batch-next`` body into (session_id, count) pairs."""
    data = _as_mapping(data, "BatchNextRequest")
    entries: "list[tuple[str, int | None]]" = []
    for item in _as_sequence(_require(data, "requests"), "requests"):
        item = _as_mapping(item, "BatchNextRequest entry")
        session_id = _as_str(_require(item, "session_id"), "session_id")
        count: "int | None" = None
        if "count" in item and item["count"] is not None:
            count = validate_count(_as_int(item["count"], "count"))
        entries.append((session_id, count))
    if not entries:
        raise TransportError("Field 'requests' must not be empty")
    return entries


def encode_batch_next_response(outcomes: "Sequence[Any]") -> "dict[str, Any]":
    """Encode per-session batch outcomes (result or error) positionally.

    Each outcome is either a :class:`NextResultsResponse` or the exception
    the request failed with; errors keep the uniform envelope the 4xx/5xx
    paths use, so a client can map them back to typed exceptions per item.
    """
    results: "list[dict[str, Any]]" = []
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            results.append(
                {
                    "ok": False,
                    "error": {
                        "type": type(outcome).__name__,
                        "message": str(outcome),
                    },
                }
            )
        else:
            results.append({"ok": True, "result": encode_next_results_response(outcome)})
    return {"results": results}


def encode_session_info(info: SessionInfo) -> "dict[str, Any]":
    return {
        "session_id": info.session_id,
        "dataset": info.dataset,
        "text_query": info.text_query,
        "total_shown": info.total_shown,
        "positives_found": info.positives_found,
        "rounds": info.rounds,
    }


def decode_session_info(data: Any) -> SessionInfo:
    data = _as_mapping(data, "SessionInfo")
    return SessionInfo(
        session_id=_as_str(_require(data, "session_id"), "session_id"),
        dataset=_as_str(_require(data, "dataset"), "dataset"),
        text_query=_as_str(_require(data, "text_query"), "text_query"),
        total_shown=_as_int(_require(data, "total_shown"), "total_shown"),
        positives_found=_as_int(_require(data, "positives_found"), "positives_found"),
        rounds=_as_int(_require(data, "rounds"), "rounds"),
    )


def encode_session_list_entry(entry: SessionListEntry) -> "dict[str, Any]":
    return {
        **encode_session_info(entry.info),
        "telemetry": {
            "idle_seconds": entry.idle_seconds,
            "lookup_seconds": entry.lookup_seconds,
            "update_seconds": entry.update_seconds,
            "seconds_per_round": entry.seconds_per_round,
        },
    }


def decode_session_list_entry(data: Any) -> SessionListEntry:
    data = _as_mapping(data, "SessionListEntry")
    telemetry = _as_mapping(_require(data, "telemetry"), "Field 'telemetry'")
    return SessionListEntry(
        info=decode_session_info(data),
        idle_seconds=_as_float(_require(telemetry, "idle_seconds"), "idle_seconds"),
        lookup_seconds=_as_float(
            _require(telemetry, "lookup_seconds"), "lookup_seconds"
        ),
        update_seconds=_as_float(
            _require(telemetry, "update_seconds"), "update_seconds"
        ),
        # Added at protocol revision 2; default keeps revision-1 payloads
        # (an older server behind a newer client) decodable.
        seconds_per_round=_as_float(
            telemetry.get("seconds_per_round", 0.0), "seconds_per_round"
        ),
    )


def encode_session_page(page: SessionPage) -> "dict[str, Any]":
    return {
        "sessions": [encode_session_list_entry(entry) for entry in page.sessions],
        "next_cursor": page.next_cursor,
    }


def decode_session_page(data: Any) -> SessionPage:
    data = _as_mapping(data, "SessionPage")
    cursor = data.get("next_cursor")
    if cursor is not None:
        cursor = _as_str(cursor, "next_cursor")
    return SessionPage(
        sessions=tuple(
            decode_session_list_entry(item)
            for item in _as_sequence(_require(data, "sessions"), "sessions")
        ),
        next_cursor=cursor,
    )


# ---------------------------------------------------------------------------
# live-dataset codecs (protocol revision 4)
# ---------------------------------------------------------------------------
def encode_object_instance(instance: ObjectInstance) -> "dict[str, Any]":
    return {
        "category": instance.category,
        "box": {
            "x": instance.box.x,
            "y": instance.box.y,
            "width": instance.box.width,
            "height": instance.box.height,
        },
        "instance_id": instance.instance_id,
        "distinctiveness": instance.distinctiveness,
    }


def decode_object_instance(data: Any) -> ObjectInstance:
    data = _as_mapping(data, "ObjectInstance")
    box = _as_mapping(_require(data, "box"), "Field 'box'")
    try:
        return ObjectInstance(
            category=_as_str(_require(data, "category"), "category"),
            box=BoundingBox(
                _as_float(_require(box, "x"), "box.x"),
                _as_float(_require(box, "y"), "box.y"),
                _as_float(_require(box, "width"), "box.width"),
                _as_float(_require(box, "height"), "box.height"),
            ),
            instance_id=_as_int(data.get("instance_id", 0), "instance_id"),
            distinctiveness=_as_float(
                data.get("distinctiveness", 1.0), "distinctiveness"
            ),
        )
    except DatasetError as exc:
        raise TransportError(f"Invalid object instance: {exc}") from exc


def encode_synthetic_image(image: SyntheticImage) -> "dict[str, Any]":
    return {
        "image_id": image.image_id,
        "width": image.width,
        "height": image.height,
        "context": image.context,
        "objects": [encode_object_instance(obj) for obj in image.objects],
    }


def decode_synthetic_image(data: Any) -> SyntheticImage:
    data = _as_mapping(data, "Image")
    objects = tuple(
        decode_object_instance(item)
        for item in _as_sequence(data.get("objects", ()), "objects")
    )
    try:
        return SyntheticImage(
            image_id=_as_int(_require(data, "image_id"), "image_id"),
            width=_as_int(_require(data, "width"), "width"),
            height=_as_int(_require(data, "height"), "height"),
            context=_as_str(_require(data, "context"), "context"),
            objects=objects,
        )
    except DatasetError as exc:
        raise TransportError(f"Invalid image: {exc}") from exc


def encode_upsert_request(images: "Sequence[SyntheticImage]") -> "dict[str, Any]":
    return {"images": [encode_synthetic_image(image) for image in images]}


def decode_upsert_request(data: Any) -> "list[SyntheticImage]":
    data = _as_mapping(data, "UpsertRequest")
    images = [
        decode_synthetic_image(item)
        for item in _as_sequence(_require(data, "images"), "images")
    ]
    if not images:
        raise TransportError("Field 'images' must not be empty")
    return images


def encode_delete_request(image_ids: "Sequence[int]") -> "dict[str, Any]":
    return {"image_ids": [int(image_id) for image_id in image_ids]}


def decode_delete_request(data: Any) -> "list[int]":
    data = _as_mapping(data, "DeleteRequest")
    image_ids = [
        _as_int(item, "image_ids")
        for item in _as_sequence(_require(data, "image_ids"), "image_ids")
    ]
    if not image_ids:
        raise TransportError("Field 'image_ids' must not be empty")
    return image_ids


def decode_dataset_info(data: Any) -> DatasetInfo:
    """Decode one registry manifest row (tolerant of extra server fields)."""
    data = _as_mapping(data, "DatasetInfo")
    return DatasetInfo(
        name=_as_str(_require(data, "name"), "name"),
        version=_as_int(_require(data, "version"), "version"),
        generation=_as_int(_require(data, "generation"), "generation"),
        image_count=_as_int(_require(data, "image_count"), "image_count"),
        delta_rows=_as_int(data.get("delta_rows", 0), "delta_rows"),
        tombstones=_as_int(data.get("tombstones", 0), "tombstones"),
        merges_completed=_as_int(
            data.get("merges_completed", 0), "merges_completed"
        ),
        retained_versions=tuple(
            _as_int(item, "retained_versions")
            for item in _as_sequence(
                data.get("retained_versions", ()), "retained_versions"
            )
        ),
    )


# ---------------------------------------------------------------------------
# paging cursors
# ---------------------------------------------------------------------------
def encode_cursor(sequence: int) -> str:
    """Encode a session creation sequence number as an opaque cursor token.

    Sequence numbers (not session ids) survive deletion: a page boundary
    stays valid even when the session it pointed at is closed before the
    next page is fetched.
    """
    return base64.urlsafe_b64encode(f"s:{sequence}".encode("ascii")).decode("ascii")


def decode_cursor(cursor: str) -> int:
    """Decode a cursor token; raises :class:`TransportError` on garbage."""
    try:
        raw = base64.urlsafe_b64decode(cursor.encode("ascii")).decode("ascii")
        prefix, _, sequence = raw.partition(":")
        if prefix != "s":
            raise ValueError(raw)
        return int(sequence)
    except (ValueError, UnicodeError, binascii.Error) as exc:
        raise TransportError(f"Malformed cursor '{cursor}'") from exc


# ---------------------------------------------------------------------------
# wire helpers
# ---------------------------------------------------------------------------
def dump_json(payload: Mapping[str, Any]) -> bytes:
    """Serialize a response payload to UTF-8 JSON bytes."""
    return json.dumps(payload).encode("utf-8")


def parse_json(body: "bytes | None") -> Any:
    """Parse a request body, raising :class:`TransportError` on bad JSON."""
    if not body:
        raise TransportError("Request body must be a JSON object")
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"Request body is not valid JSON: {exc}") from exc
