"""Thread-safe session engine in front of :class:`SeeSawService`.

``SeeSawService`` and ``SearchSession`` are single-threaded by design; the
HTTP transport (:mod:`repro.server.http`) handles each request on its own
thread.  The :class:`SessionManager` sits between them and provides:

* **per-session locks** — two requests touching the same session serialize,
  requests for different sessions proceed in parallel;
* **double-checked index builds** — two concurrent ``POST /sessions`` for the
  same not-yet-indexed dataset trigger exactly one build, the second request
  waits for it instead of duplicating the work;
* **capacity limiting** — at most ``max_sessions`` live sessions, excess
  starts fail fast with :class:`ServiceOverloadedError` (HTTP 503);
* **TTL eviction** — sessions idle longer than ``session_ttl_seconds`` are
  reaped, so abandoned browser tabs cannot pin memory forever;
* **request coalescing** — when ``batch_window_ms`` is positive, concurrent
  next-batch requests are gathered by a
  :class:`~repro.server.batching.NextBatchCoalescer` and dispatched as one
  fused cohort through :meth:`SeeSawService.batch_next` (one GEMM for the
  whole cohort); ``batch_next`` also serves the explicit
  ``POST /sessions/batch-next`` endpoint.

Closing and evicting both go through :meth:`_remove_session`, which acquires
the session's own lock before the service-side close: a round already in
flight finishes cleanly, the registry entry and the service session are
removed as one unit, and concurrent close/evict callers race idempotently
instead of leaving a lock entry behind or double-deleting.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from contextlib import ExitStack
from typing import Callable, Sequence

from repro.exceptions import (
    IdempotencyConflictError,
    ReproError,
    ServiceOverloadedError,
    TransportError,
    UnknownResourceError,
)
from repro.obs import timed_acquire
from repro.server.deadlines import check_deadline
from repro.server.middleware import InFlightTracker
from repro.server.api import (
    PROTOCOL_REVISION,
    PROTOCOL_VERSION,
    FeedbackRequest,
    NextResultsResponse,
    SessionInfo,
    SessionListEntry,
    SessionPage,
    StartSessionRequest,
)
from repro.server.batching import NextBatchCoalescer
from repro.server.codec import (
    MAX_PAGE_LIMIT,
    MAX_RESULT_COUNT,
    decode_cursor,
    encode_cursor,
)
from repro.server.service import SeeSawService

DEFAULT_PAGE_LIMIT = 50
"""Page size of ``GET /v1/sessions`` when the client does not pass one."""

IDEMPOTENCY_KEYS_PER_SESSION = 256
"""How many feedback idempotency records one session retains (FIFO).  A
client retry storm older than this window replays as a fresh apply — the
cap exists so a key-per-request client cannot grow memory unboundedly."""


class SessionManager:
    """Serializes access to a :class:`SeeSawService` for concurrent callers."""

    def __init__(
        self,
        service: SeeSawService,
        max_sessions: int = 256,
        session_ttl_seconds: float = 1800.0,
        clock: "Callable[[], float]" = time.monotonic,
        batch_window_ms: "float | None" = None,
        max_batch_size: int = 64,
    ) -> None:
        self.service = service
        self.max_sessions = int(max_sessions)
        self.session_ttl_seconds = float(session_ttl_seconds)
        self._clock = clock
        self._started_at = clock()
        self._draining = threading.Event()
        self._inflight_tracker: "InFlightTracker | None" = None
        self._registry_lock = threading.Lock()
        self._session_locks: dict[str, threading.Lock] = {}
        self._last_used: dict[str, float] = {}
        # Monotonic creation sequence per session: the stable order (and the
        # opaque cursor space) of the paged session listing.
        self._created_seq: dict[str, int] = {}
        self._seq_counter = itertools.count(1)
        # Per-session idempotency records for /feedback:
        # key -> (request fingerprint, SessionInfo returned by the apply).
        self._idempotency: dict[str, OrderedDict[str, tuple[object, SessionInfo]]] = {}
        self._index_locks: dict[tuple[str, bool], threading.Lock] = {}
        self._index_locks_guard = threading.Lock()
        if batch_window_ms is None:
            batch_window_ms = service.config.batch_window_ms
        self.batch_window_ms = float(batch_window_ms)
        self.max_batch_size = int(max_batch_size)
        # The coalescer's waiter timeout is tied to the request deadline
        # when one is configured: a waiter whose budget is N ms can never
        # usefully outwait it, so the bound is the budget plus one second of
        # grace (time for the leader to fail it typed first) instead of the
        # historical hard-coded 60 s.
        deadline_ms = service.config.request_deadline_ms
        wait_timeout_seconds = (
            max(1.0, deadline_ms / 1000.0 + 1.0) if deadline_ms > 0 else 60.0
        )
        self._coalescer: "NextBatchCoalescer | None" = (
            NextBatchCoalescer(
                self._dispatch_batch,
                window_seconds=self.batch_window_ms / 1000.0,
                max_batch_size=self.max_batch_size,
                wait_timeout_seconds=wait_timeout_seconds,
                registry=service.metrics,
            )
            if self.batch_window_ms > 0
            else None
        )

    # ------------------------------------------------------------------
    # index builds
    # ------------------------------------------------------------------
    def _index_build_lock(self, dataset: str, multiscale: bool) -> threading.Lock:
        key = (dataset, multiscale)
        with self._index_locks_guard:
            lock = self._index_locks.get(key)
            if lock is None:
                lock = self._index_locks[key] = threading.Lock()
            return lock

    def ensure_index(self, dataset: str, multiscale: bool = True) -> None:
        """Build (or cache-load) an index at most once across threads.

        Classic double-checked locking: the fast path is a lock-free check
        against the service's in-memory index table; only a miss serializes
        on the per-(dataset, multiscale) build lock, re-checking inside it.
        """
        if self.service.has_index(dataset, multiscale):
            return
        with self._index_build_lock(dataset, multiscale):
            if not self.service.has_index(dataset, multiscale):
                self.service.index_for(dataset, multiscale)

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        """Start a session; evicts idle sessions and enforces capacity first.

        Cheap request validation and a preliminary capacity check run before
        ``ensure_index`` so a malformed or 503-destined request never
        triggers (or waits on) an expensive index build.
        """
        self._check_draining()
        self.service.validate_start_request(request)
        self.evict_expired()
        self._check_capacity()
        self.ensure_index(request.dataset, request.multiscale)
        with self._registry_lock:
            self._check_capacity_locked()
            info = self.service.start_session(request)
            self._session_locks[info.session_id] = threading.Lock()
            self._last_used[info.session_id] = self._clock()
            self._created_seq[info.session_id] = next(self._seq_counter)
            return info

    def _check_draining(self) -> None:
        if self._draining.is_set():
            self.service.metrics.counter(
                "seesaw_shed_total",
                "Requests shed before processing, by reason.",
                labels=("reason",),
            ).labels("draining").inc()
            raise ServiceOverloadedError(
                "Service is draining and accepts no new sessions; "
                "retry against another instance",
                retry_after_seconds=self.service.config.drain_timeout_s,
            )

    def _check_capacity(self) -> None:
        with self._registry_lock:
            self._check_capacity_locked()

    def _check_capacity_locked(self) -> None:
        if len(self._session_locks) >= self.max_sessions:
            raise ServiceOverloadedError(
                f"Session limit reached ({self.max_sessions} live sessions); "
                "retry later or close an existing session"
            )

    def _lock_for(self, session_id: str) -> threading.Lock:
        with self._registry_lock:
            lock = self._session_locks.get(session_id)
            if lock is None:
                raise UnknownResourceError(f"Unknown session '{session_id}'")
            return lock

    def _touch(self, session_id: str) -> None:
        with self._registry_lock:
            if session_id in self._last_used:
                self._last_used[session_id] = self._clock()

    def next_results(
        self, session_id: str, count: "int | None" = None
    ) -> NextResultsResponse:
        """Thread-safe :meth:`SeeSawService.next_results`.

        With a positive batch window the request is handed to the coalescer
        and may be served as part of a fused cohort; the result (and any
        error) is indistinguishable from the sequential path.
        """
        deadline = check_deadline("next-results dispatch")
        if self._coalescer is not None:
            response = self._coalescer.submit(session_id, count, deadline=deadline)
        else:
            with timed_acquire(self._lock_for(session_id)):
                # Re-check after the lock wait: time queued behind another
                # round is exactly the budget a dead request must not spend
                # on an engine dispatch.
                check_deadline("engine dispatch")
                response = self.service.next_results(session_id, count)
        self._touch(session_id)
        return response

    def batch_next(
        self, requests: "Sequence[tuple[str, int | None]]"
    ) -> "list[NextResultsResponse | ReproError]":
        """Explicitly batched next-results (the ``/sessions/batch-next`` body).

        Dispatches immediately (no coalescing window — the caller already
        batched) in cohorts of at most ``max_batch_size``: one request body
        must not be able to hold an unbounded number of session locks or
        stack an unbounded GEMM.  Outcomes align with ``requests``; failures
        are returned per item, not raised.
        """
        requests = list(requests)
        outcomes: "list[NextResultsResponse | ReproError]" = []
        for start in range(0, len(requests), self.max_batch_size):
            outcomes.extend(
                self._dispatch_batch(requests[start : start + self.max_batch_size])
            )
        for (session_id, _), outcome in zip(requests, outcomes):
            if not isinstance(outcome, BaseException):
                self._touch(session_id)
        return outcomes

    def _dispatch_batch(
        self, entries: "list[tuple[str, int | None]]"
    ) -> "list[NextResultsResponse | ReproError]":
        """Run one cohort under every member's session lock.

        Locks are acquired in sorted session-id order (the global lock
        ordering, so a cohort can never deadlock against another cohort or a
        single-session request).  Sessions with no registry entry get their
        ``UnknownResourceError`` outcome without touching the service.
        """
        known: "dict[str, threading.Lock]" = {}
        missing: "dict[str, UnknownResourceError]" = {}
        for session_id in sorted({session_id for session_id, _ in entries}):
            try:
                known[session_id] = self._lock_for(session_id)
            except UnknownResourceError as exc:
                missing[session_id] = exc
        serviceable = [entry for entry in entries if entry[0] in known]
        with ExitStack() as stack:
            for session_id in sorted(known):
                stack.enter_context(timed_acquire(known[session_id]))
            results = self.service.batch_next(serviceable)
        by_position = iter(results)
        outcomes: "list[NextResultsResponse | ReproError]" = []
        for session_id, _ in entries:
            if session_id in known:
                outcomes.append(next(by_position))
            else:
                outcomes.append(missing[session_id])
        return outcomes

    def give_feedback(
        self, request: FeedbackRequest, idempotency_key: "str | None" = None
    ) -> SessionInfo:
        """Thread-safe :meth:`SeeSawService.give_feedback`, optionally idempotent.

        With an ``idempotency_key``, the first apply records its result under
        the key; a replay with the *same* key and payload returns that
        recorded :class:`SessionInfo` without re-applying the feedback (a
        client retrying a timed-out request cannot double-label an image),
        and a replay with the same key but a *different* payload raises
        :class:`IdempotencyConflictError` — silently answering a different
        request with the cached result would hide a client bug.
        """
        check_deadline("feedback apply")
        with timed_acquire(self._lock_for(request.session_id)):
            if idempotency_key is not None:
                fingerprint = self._feedback_fingerprint(request)
                cache = self._idempotency.get(request.session_id)
                recorded = cache.get(idempotency_key) if cache is not None else None
                if recorded is not None:
                    recorded_fingerprint, recorded_info = recorded
                    if recorded_fingerprint != fingerprint:
                        raise IdempotencyConflictError(
                            f"Idempotency key '{idempotency_key}' was already "
                            f"used with a different feedback payload for "
                            f"session '{request.session_id}'"
                        )
                    info = recorded_info
                else:
                    info = self.service.give_feedback(request)
                    cache = self._idempotency.setdefault(
                        request.session_id, OrderedDict()
                    )
                    cache[idempotency_key] = (fingerprint, info)
                    while len(cache) > IDEMPOTENCY_KEYS_PER_SESSION:
                        cache.popitem(last=False)
            else:
                info = self.service.give_feedback(request)
        self._touch(request.session_id)
        return info

    @staticmethod
    def _feedback_fingerprint(request: FeedbackRequest) -> object:
        """A hashable identity of one feedback payload (for replay detection)."""
        return (
            request.image_id,
            request.relevant,
            tuple((box.x, box.y, box.width, box.height) for box in request.boxes),
        )

    def session_info(self, session_id: str) -> SessionInfo:
        """Thread-safe :meth:`SeeSawService.session_info`."""
        with timed_acquire(self._lock_for(session_id)):
            return self.service.session_info(session_id)

    def list_sessions(
        self, cursor: "str | None" = None, limit: "int | None" = None
    ) -> SessionPage:
        """One page of live sessions, in creation order, with telemetry.

        The cursor is opaque to clients; internally it is the creation
        sequence number of the last listed session, so a page boundary stays
        valid when sessions on either side of it are closed between pages.
        Telemetry fields are read without taking each session's lock — a
        listing must not queue behind every in-flight round, and a
        single-round-stale counter is fine for monitoring reads.
        """
        after = decode_cursor(cursor) if cursor is not None else 0
        if limit is None:
            limit = DEFAULT_PAGE_LIMIT
        if limit < 1 or limit > MAX_PAGE_LIMIT:
            raise TransportError(
                f"Field 'limit' must be between 1 and {MAX_PAGE_LIMIT}, got {limit}"
            )
        now = self._clock()
        with self._registry_lock:
            ordered = sorted(
                (seq, session_id)
                for session_id, seq in self._created_seq.items()
                if seq > after
            )
            last_used = dict(self._last_used)
        page, remainder = ordered[:limit], ordered[limit:]
        entries: "list[SessionListEntry]" = []
        for seq, session_id in page:
            try:
                info = self.service.session_info(session_id)
                stats = self.service.session_stats(session_id)
            except UnknownResourceError:
                # Closed between the registry snapshot and this read; the
                # listing simply skips it (its cursor slot stays consumed).
                continue
            entries.append(
                SessionListEntry(
                    info=info,
                    idle_seconds=max(0.0, now - last_used.get(session_id, now)),
                    lookup_seconds=stats.lookup_seconds,
                    update_seconds=stats.update_seconds,
                    seconds_per_round=stats.seconds_per_round,
                )
            )
        next_cursor = encode_cursor(page[-1][0]) if remainder and page else None
        return SessionPage(sessions=tuple(entries), next_cursor=next_cursor)

    def close_session(self, session_id: str) -> None:
        """Close a session and release its bookkeeping."""
        self._remove_session(session_id)

    def _remove_session(self, session_id: str, only_if_expired: bool = False) -> bool:
        """Atomically retire one session; returns True if this call owned it.

        The registry entries are popped under the registry lock, then the
        service-side close runs *while holding the session's own lock*: a
        request already past ``_lock_for`` finishes its round against a live
        session instead of having it deleted mid-flight, and two concurrent
        removers (close vs. evict, or double close) race on the pop — the
        loser sees no entry and does nothing, so nothing is double-deleted
        and no lock entry is left behind.

        ``only_if_expired`` re-checks the TTL under the registry lock at pop
        time: an eviction decision made earlier must not retire a session a
        concurrent request touched in the meantime.
        """
        with self._registry_lock:
            if only_if_expired:
                last_used = self._last_used.get(session_id)
                if (
                    last_used is None
                    or self._clock() - last_used <= self.session_ttl_seconds
                ):
                    return False
            lock = self._session_locks.pop(session_id, None)
            self._last_used.pop(session_id, None)
            self._created_seq.pop(session_id, None)
            self._idempotency.pop(session_id, None)
        if lock is None:
            # Already closed or evicted (or never existed); closing the
            # service side again is a harmless no-op, kept for callers that
            # bypass the manager's registry.
            self.service.close_session(session_id)
            return False
        with lock:
            self.service.close_session(session_id)
        return True

    # ------------------------------------------------------------------
    # eviction and introspection
    # ------------------------------------------------------------------
    def evict_expired(self) -> "list[str]":
        """Close sessions idle longer than the TTL; returns the evicted ids.

        Expiry is decided under the registry lock, but each removal goes
        through :meth:`_remove_session` so an eviction racing a concurrent
        ``close_session`` settles on exactly one owner per session.
        """
        now = self._clock()
        with self._registry_lock:
            expired = [
                session_id
                for session_id, last_used in self._last_used.items()
                if now - last_used > self.session_ttl_seconds
            ]
        return [
            session_id
            for session_id in expired
            if self._remove_session(session_id, only_if_expired=True)
        ]

    @property
    def active_session_count(self) -> int:
        """Number of live (non-evicted) sessions."""
        with self._registry_lock:
            return len(self._session_locks)

    # ------------------------------------------------------------------
    # graceful drain
    # ------------------------------------------------------------------
    def attach_inflight_tracker(self, tracker: InFlightTracker) -> None:
        """Register the app pipeline's in-flight tracker.

        One tracker serves three consumers: admission control (the
        middleware that owns it), ``/healthz`` (the live count below), and
        :meth:`drain` (which waits for the count to reach zero).
        """
        self._inflight_tracker = tracker

    @property
    def in_flight(self) -> int:
        """Requests currently inside the app pipeline (0 when untracked)."""
        tracker = self._inflight_tracker
        return tracker.count if tracker is not None else 0

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Flip to draining: ``/healthz`` reports it, new sessions get 503."""
        self._draining.set()

    def drain(self, timeout_s: "float | None" = None) -> bool:
        """Stop accepting new sessions and wait out in-flight work.

        Returns ``True`` when in-flight reached zero inside the budget
        (``config.drain_timeout_s`` when not given), ``False`` when the
        budget ran out first — the caller closes the listener either way;
        the return value only says whether any request was cut off.
        Idempotent and safe to call from a signal handler's thread.
        """
        self.begin_drain()
        if timeout_s is None:
            timeout_s = self.service.config.drain_timeout_s
        deadline = time.monotonic() + float(timeout_s)
        while self.in_flight > 0:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)
        return True

    def capabilities(self) -> "dict[str, object]":
        """The payload ``GET /v1/capabilities`` returns.

        Everything a client needs to negotiate up front: the protocol
        revision, which optional features this deployment serves, the hard
        request limits, and the compute topology requests will score
        through.  Deployment-static by design — unlike ``/healthz`` it
        carries no live counters, so clients may cache it per connection.
        """
        config = self.service.config
        return {
            "protocol": {
                "version": PROTOCOL_VERSION,
                "revision": PROTOCOL_REVISION,
            },
            "features": {
                "streaming_ndjson": True,
                "idempotent_feedback": True,
                "cursor_paging": True,
                "batch_next": True,
                "request_coalescing": self.batch_window_ms > 0,
                "rate_limiting": config.rate_limit_rps > 0,
                "legacy_routes": True,
                "metrics_exposition": True,
                "tracing": config.telemetry.enabled,
                "graph_ann": config.ann_search,
                "deadline_propagation": True,
                "admission_control": config.max_in_flight > 0,
                "graceful_drain": True,
                "retry_hints": True,
                "live_datasets": config.live_datasets,
            },
            "limits": {
                "max_sessions": self.max_sessions,
                "max_batch_size": self.max_batch_size,
                "max_count": MAX_RESULT_COUNT,
                "max_page_limit": MAX_PAGE_LIMIT,
                "idempotency_keys_per_session": IDEMPOTENCY_KEYS_PER_SESSION,
                "session_ttl_seconds": self.session_ttl_seconds,
                "rate_limit_rps": config.rate_limit_rps,
                "rate_limit_burst": config.rate_limit_burst,
                "request_deadline_ms": config.request_deadline_ms,
                "max_in_flight": config.max_in_flight,
                "drain_timeout_s": config.drain_timeout_s,
            },
            "compute": {
                "compute_dtype": config.compute_dtype,
                "n_shards": config.n_shards,
                "quantized_store": config.quantized_store,
                "ann_search": config.ann_search,
                "ann_ef": config.ann_ef,
                "ann_graph_degree": config.ann_graph_degree,
                "mmap_index": config.mmap_index,
                "batch_window_ms": self.batch_window_ms,
            },
            "datasets": list(self.service.dataset_names),
            # Current registry version per dataset (protocol revision 4).
            # Technically not deployment-static, but versions only move on
            # explicit mutations; clients pinning a version re-read this.
            "dataset_versions": self.service.live.versions(),
        }

    # ------------------------------------------------------------------
    # live datasets (protocol revision 4)
    # ------------------------------------------------------------------
    def list_datasets(self) -> "list[dict[str, object]]":
        """All registered datasets' registry manifests."""
        return self.service.live.list_datasets()

    def describe_dataset(self, name: str) -> "dict[str, object]":
        """The registry manifest of one dataset."""
        return self.service.live.describe(name)

    def upsert_images(
        self, name: str, images: "Sequence[object]"
    ) -> "dict[str, object]":
        """Add or replace images in a live dataset (serialized per dataset)."""
        self._check_draining()
        check_deadline("dataset upsert")
        return self.service.live.upsert_images(name, images)  # type: ignore[arg-type]

    def delete_images(
        self, name: str, image_ids: "Sequence[int]"
    ) -> "dict[str, object]":
        """Delete images from a live dataset (serialized per dataset)."""
        self._check_draining()
        check_deadline("dataset delete")
        return self.service.live.delete_images(name, image_ids)

    def force_merge(self, name: str) -> "dict[str, object]":
        """Synchronously compact the dataset's delta segment."""
        check_deadline("dataset merge")
        return self.service.live.force_merge(name)

    # ------------------------------------------------------------------
    # metrics exposition (GET /v1/metrics)
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """The Prometheus text exposition of the service's registry."""
        return self.service.metrics.to_prometheus_text()

    def metrics_json(self) -> "dict[str, object]":
        """The JSON exposition (same snapshot, quantile estimates included)."""
        return self.service.metrics.to_json()

    def health(self) -> "dict[str, object]":
        """The payload ``GET /healthz`` returns.

        The ``fused_rounds`` / ``fused_sessions`` / ``coalescer`` keys are
        deprecation shims: since the obs subsystem they are read back from
        the metrics registry (``seesaw_fused_*_total``,
        ``seesaw_coalescer_*``), kept here so pre-obs dashboards and the
        legacy route's byte-compatibility survive one more revision.
        """
        coalescer_stats = (
            self._coalescer.stats()
            if self._coalescer is not None
            else {"batches_dispatched": 0, "requests_coalesced": 0, "largest_batch": 0}
        )
        state = "draining" if self.draining else "serving"
        return {
            # "status" predates the drain state and stays for byte-compat
            # ("ok" while serving); "state" is the authoritative field.
            "status": "ok" if state == "serving" else "draining",
            "state": state,
            "uptime_seconds": max(0.0, self._clock() - self._started_at),
            "in_flight": self.in_flight,
            "datasets": list(self.service.dataset_names),
            "active_sessions": self.active_session_count,
            "max_sessions": self.max_sessions,
            "index_cache_hits": self.service.cache_hits,
            "index_cache_misses": self.service.cache_misses,
            # One columnar query engine per in-memory index, shared by all
            # sessions on that dataset; per-session state is only the
            # SeenMask each session's context holds across HTTP rounds.
            "cached_engines": self.service.cached_engine_count,
            # Sharding / batching topology and how much fusion is happening.
            "n_shards": self.service.config.n_shards,
            "store_shards": self.service.store_shard_counts,
            # Storage & compute tiers: the scoring dtype, whether the int8
            # candidate tier is on, and whether cache loads memory-map.
            "compute_dtype": self.service.config.compute_dtype,
            "quantized_store": self.service.config.quantized_store,
            "ann_search": self.service.config.ann_search,
            "mmap_index": self.service.config.mmap_index,
            "store_tiers": self.service.store_tiers,
            # Physical generation per dataset: bumps on every mutation *and*
            # every merge swap, so dashboards can watch compactions land.
            "dataset_generations": self.service.live.dataset_generations(),
            "batch_window_ms": self.batch_window_ms,
            "fused_rounds": self.service.fused_rounds,
            "fused_sessions": self.service.fused_sessions,
            "coalescer": coalescer_stats,
        }
