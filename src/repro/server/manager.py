"""Thread-safe session engine in front of :class:`SeeSawService`.

``SeeSawService`` and ``SearchSession`` are single-threaded by design; the
HTTP transport (:mod:`repro.server.http`) handles each request on its own
thread.  The :class:`SessionManager` sits between them and provides:

* **per-session locks** — two requests touching the same session serialize,
  requests for different sessions proceed in parallel;
* **double-checked index builds** — two concurrent ``POST /sessions`` for the
  same not-yet-indexed dataset trigger exactly one build, the second request
  waits for it instead of duplicating the work;
* **capacity limiting** — at most ``max_sessions`` live sessions, excess
  starts fail fast with :class:`ServiceOverloadedError` (HTTP 503);
* **TTL eviction** — sessions idle longer than ``session_ttl_seconds`` are
  reaped, so abandoned browser tabs cannot pin memory forever.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.exceptions import ServiceOverloadedError, UnknownResourceError
from repro.server.api import (
    FeedbackRequest,
    NextResultsResponse,
    SessionInfo,
    StartSessionRequest,
)
from repro.server.service import SeeSawService


class SessionManager:
    """Serializes access to a :class:`SeeSawService` for concurrent callers."""

    def __init__(
        self,
        service: SeeSawService,
        max_sessions: int = 256,
        session_ttl_seconds: float = 1800.0,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        self.service = service
        self.max_sessions = int(max_sessions)
        self.session_ttl_seconds = float(session_ttl_seconds)
        self._clock = clock
        self._registry_lock = threading.Lock()
        self._session_locks: dict[str, threading.Lock] = {}
        self._last_used: dict[str, float] = {}
        self._index_locks: dict[tuple[str, bool], threading.Lock] = {}
        self._index_locks_guard = threading.Lock()

    # ------------------------------------------------------------------
    # index builds
    # ------------------------------------------------------------------
    def _index_build_lock(self, dataset: str, multiscale: bool) -> threading.Lock:
        key = (dataset, multiscale)
        with self._index_locks_guard:
            lock = self._index_locks.get(key)
            if lock is None:
                lock = self._index_locks[key] = threading.Lock()
            return lock

    def ensure_index(self, dataset: str, multiscale: bool = True) -> None:
        """Build (or cache-load) an index at most once across threads.

        Classic double-checked locking: the fast path is a lock-free check
        against the service's in-memory index table; only a miss serializes
        on the per-(dataset, multiscale) build lock, re-checking inside it.
        """
        if self.service.has_index(dataset, multiscale):
            return
        with self._index_build_lock(dataset, multiscale):
            if not self.service.has_index(dataset, multiscale):
                self.service.index_for(dataset, multiscale)

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        """Start a session; evicts idle sessions and enforces capacity first.

        Cheap request validation and a preliminary capacity check run before
        ``ensure_index`` so a malformed or 503-destined request never
        triggers (or waits on) an expensive index build.
        """
        self.service.validate_start_request(request)
        self.evict_expired()
        self._check_capacity()
        self.ensure_index(request.dataset, request.multiscale)
        with self._registry_lock:
            self._check_capacity_locked()
            info = self.service.start_session(request)
            self._session_locks[info.session_id] = threading.Lock()
            self._last_used[info.session_id] = self._clock()
            return info

    def _check_capacity(self) -> None:
        with self._registry_lock:
            self._check_capacity_locked()

    def _check_capacity_locked(self) -> None:
        if len(self._session_locks) >= self.max_sessions:
            raise ServiceOverloadedError(
                f"Session limit reached ({self.max_sessions} live sessions); "
                "retry later or close an existing session"
            )

    def _lock_for(self, session_id: str) -> threading.Lock:
        with self._registry_lock:
            lock = self._session_locks.get(session_id)
            if lock is None:
                raise UnknownResourceError(f"Unknown session '{session_id}'")
            return lock

    def _touch(self, session_id: str) -> None:
        with self._registry_lock:
            if session_id in self._last_used:
                self._last_used[session_id] = self._clock()

    def next_results(
        self, session_id: str, count: "int | None" = None
    ) -> NextResultsResponse:
        """Thread-safe :meth:`SeeSawService.next_results`."""
        with self._lock_for(session_id):
            response = self.service.next_results(session_id, count)
        self._touch(session_id)
        return response

    def give_feedback(self, request: FeedbackRequest) -> SessionInfo:
        """Thread-safe :meth:`SeeSawService.give_feedback`."""
        with self._lock_for(request.session_id):
            info = self.service.give_feedback(request)
        self._touch(request.session_id)
        return info

    def session_info(self, session_id: str) -> SessionInfo:
        """Thread-safe :meth:`SeeSawService.session_info`."""
        with self._lock_for(session_id):
            return self.service.session_info(session_id)

    def close_session(self, session_id: str) -> None:
        """Close a session and release its bookkeeping."""
        with self._registry_lock:
            self._session_locks.pop(session_id, None)
            self._last_used.pop(session_id, None)
        self.service.close_session(session_id)

    # ------------------------------------------------------------------
    # eviction and introspection
    # ------------------------------------------------------------------
    def evict_expired(self) -> "list[str]":
        """Close sessions idle longer than the TTL; returns the evicted ids."""
        now = self._clock()
        with self._registry_lock:
            expired = [
                session_id
                for session_id, last_used in self._last_used.items()
                if now - last_used > self.session_ttl_seconds
            ]
            for session_id in expired:
                self._session_locks.pop(session_id, None)
                self._last_used.pop(session_id, None)
        for session_id in expired:
            self.service.close_session(session_id)
        return expired

    @property
    def active_session_count(self) -> int:
        """Number of live (non-evicted) sessions."""
        with self._registry_lock:
            return len(self._session_locks)

    def health(self) -> "dict[str, object]":
        """The payload ``GET /healthz`` returns."""
        return {
            "status": "ok",
            "datasets": list(self.service.dataset_names),
            "active_sessions": self.active_session_count,
            "max_sessions": self.max_sessions,
            "index_cache_hits": self.service.cache_hits,
            "index_cache_misses": self.service.cache_misses,
            # One columnar query engine per in-memory index, shared by all
            # sessions on that dataset; per-session state is only the
            # SeenMask each session's context holds across HTTP rounds.
            "cached_engines": self.service.cached_engine_count,
        }
