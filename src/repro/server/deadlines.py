"""Deadline propagation for the `/v1` service.

A deadline is a *remaining budget*: the caller says "this answer is useless
to me after N milliseconds" and every layer below — middleware, session
locks, the next-batch coalescer, engine dispatch — checks the budget before
spending work on it and bounds its waits by what is left.  The wire carries
the budget as the ``X-Deadline-Ms`` header (milliseconds remaining at send
time, not a wall-clock timestamp, so clock skew between client and server
cannot silently shrink or inflate it — skew only costs the network flight
time, which is the best any header scheme can do).

Propagation is a contextvar, not an argument threaded through every
signature: :func:`deadline_scope` binds a :class:`Deadline` to the current
context, and any layer below reads it back with :func:`current_deadline`.
The same contextvar serves both sides of the stack:

* server-side, :class:`~repro.server.middleware.DeadlineMiddleware` parses
  the header (or applies the configured default) and opens the scope for
  the request thread;
* client-side, a caller wraps a protocol call in ``deadline_scope(ms)`` —
  the :class:`~repro.server.client.HTTPClient` turns the remaining budget
  into the header, the in-process client's scope is simply *seen* by the
  manager directly.

Cross-thread handoffs (a coalescer leader servicing a follower's request)
carry the :class:`Deadline` object explicitly — it is immutable and
clock-based, so any thread can ask it for the remaining budget.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator

from repro.exceptions import DeadlineExceededError, TransportError

DEADLINE_HEADER = "X-Deadline-Ms"
"""Wire header carrying the remaining request budget in milliseconds."""

_current_deadline: "ContextVar[Deadline | None]" = ContextVar(
    "seesaw_deadline", default=None
)


class Deadline:
    """An absolute expiry on a monotonic clock, built from a relative budget."""

    __slots__ = ("expires_at", "budget_ms", "_clock")

    def __init__(
        self, budget_ms: float, clock: "Callable[[], float]" = time.monotonic
    ) -> None:
        self.budget_ms = float(budget_ms)
        self._clock = clock
        self.expires_at = clock() + self.budget_ms / 1000.0

    def remaining_seconds(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.expires_at - self._clock()

    def remaining_ms(self) -> float:
        """Milliseconds of budget left (negative once expired)."""
        return self.remaining_seconds() * 1000.0

    @property
    def expired(self) -> bool:
        return self.remaining_seconds() <= 0.0

    def check(self, what: str) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is gone.

        ``what`` names the stage that would have spent the dead budget
        (``"dispatch"``, ``"coalesce"``) — it lands in the error message so
        a 504's envelope says *where* the request died, not just that it did.
        """
        remaining = self.remaining_ms()
        if remaining <= 0.0:
            raise DeadlineExceededError(
                f"Deadline exceeded before {what}: budget of "
                f"{self.budget_ms:.0f}ms overrun by {-remaining:.0f}ms"
            )

    def bound_wait(self, timeout_seconds: float) -> float:
        """A wait bounded by both the given timeout and the remaining budget.

        Never negative — an expired deadline yields a zero-length wait, and
        the caller's subsequent :meth:`check` raises the typed error.
        """
        return max(0.0, min(timeout_seconds, self.remaining_seconds()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget_ms={self.budget_ms}, remaining_ms={self.remaining_ms():.1f})"


def parse_deadline_header(value: str) -> Deadline:
    """Parse one ``X-Deadline-Ms`` header into a :class:`Deadline`.

    Non-numeric values are a 400 (the client is malformed, not late); zero
    and negative budgets parse successfully into an already-expired deadline
    — a clock-skewed client that shipped a dead budget gets the typed 504,
    not a validation error.
    """
    try:
        budget_ms = float(value)
    except ValueError as exc:
        raise TransportError(
            f"Header '{DEADLINE_HEADER}' must be a number of milliseconds, "
            f"got '{value}'"
        ) from exc
    if budget_ms != budget_ms or budget_ms in (float("inf"), float("-inf")):
        raise TransportError(
            f"Header '{DEADLINE_HEADER}' must be finite, got '{value}'"
        )
    return Deadline(budget_ms)


def current_deadline() -> "Deadline | None":
    """The deadline bound to the current context, if any."""
    return _current_deadline.get()


@contextmanager
def deadline_scope(deadline: "Deadline | float | None") -> "Iterator[Deadline | None]":
    """Bind a deadline to the current context for the duration of the block.

    Accepts a ready :class:`Deadline`, a relative budget in milliseconds, or
    ``None`` (which *clears* any inherited deadline — useful for background
    work spawned inside a request that must outlive it).
    """
    if deadline is not None and not isinstance(deadline, Deadline):
        deadline = Deadline(float(deadline))
    token = _current_deadline.set(deadline)
    try:
        yield deadline
    finally:
        _current_deadline.reset(token)


def check_deadline(what: str) -> "Deadline | None":
    """Check the context deadline (if any) and return it.

    The one-line guard hot paths use::

        check_deadline("engine dispatch")
    """
    deadline = _current_deadline.get()
    if deadline is not None:
        deadline.check(what)
    return deadline
