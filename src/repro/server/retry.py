"""Client-side resilience: retry with backoff, and per-host circuit breaking.

The policy here encodes three hard-won distributed-systems rules:

* **Full jitter.**  Attempt *n* sleeps a uniform draw from ``[0,
  min(retry_max_ms, retry_base_ms * 2**n))``.  Deterministic exponential
  backoff synchronizes a fleet of retrying clients into waves that re-arrive
  together; the uniform draw de-correlates them.  A server ``Retry-After``
  hint (a rate limiter's refill time, a shedder's backoff hint) acts as a
  *floor* on the draw — the server knows something the client does not.

* **At-most-once unless proven otherwise.**  A clean typed rejection (429,
  503) means the server refused *before* acting, so any call may retry it.
  A connection that died after the request was sent
  (:class:`~repro.exceptions.ConnectionFailedError` with ``request_sent``)
  or a mid-flight 500 may have already applied a state change, so only
  calls the caller marked ``idempotent`` retry those — a replayed ``next``
  would silently skip a result batch.

* **Fail fast when the host is down.**  After
  ``breaker_failure_threshold`` consecutive connection failures to a host,
  the :class:`CircuitBreaker` opens and calls raise
  :class:`~repro.exceptions.CircuitOpenError` immediately instead of each
  paying a connect timeout.  After ``breaker_reset_s`` one probe call is
  admitted (half-open); its success closes the breaker, its failure reopens
  the cooldown.

Everything honours the deadline contextvar
(:mod:`repro.server.deadlines`): a retry whose backoff sleep would not fit
in the remaining budget is not attempted — the original error surfaces
instead of a guaranteed-late success.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, TypeVar

from repro.exceptions import (
    CircuitOpenError,
    ConnectionFailedError,
    InternalServiceError,
    RetryableError,
)
from repro.obs import MetricsRegistry, get_registry
from repro.server.deadlines import current_deadline

T = TypeVar("T")

#: Breaker states, in the gauge encoding of ``seesaw_breaker_state``.
STATE_CLOSED = 0
STATE_OPEN = 1
STATE_HALF_OPEN = 2

_STATE_NAMES = {STATE_CLOSED: "closed", STATE_OPEN: "open", STATE_HALF_OPEN: "half-open"}


class CircuitBreaker:
    """One host's closed → open → half-open failure gate.

    Only *connection-level* failures count toward the threshold: a typed
    429/503/404 proves the host is alive and answering, and tripping on
    application errors would turn one bad session id into a blackout.
    """

    def __init__(
        self,
        host: str,
        failure_threshold: int = 5,
        reset_seconds: float = 5.0,
        clock: "Callable[[], float]" = time.monotonic,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.host = host
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    @property
    def state(self) -> int:
        return self._state

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self._state]

    def _publish_state(self) -> None:
        self.registry.gauge(
            "seesaw_breaker_state",
            "Circuit-breaker state per host: 0 closed, 1 open, 2 half-open.",
            labels=("host",),
        ).labels(self.host).set(float(self._state))

    def allow(self) -> None:
        """Admit the next call, or raise :class:`CircuitOpenError` fast.

        An open breaker past its cooldown flips to half-open and admits
        exactly one probe; concurrent calls keep failing fast until the
        probe reports back.
        """
        with self._lock:
            if self._state == STATE_CLOSED:
                return
            now = self._clock()
            if self._state == STATE_OPEN:
                remaining = self._opened_at + self.reset_seconds - now
                if remaining > 0:
                    raise CircuitOpenError(
                        f"Circuit breaker open for {self.host} after "
                        f"{self._consecutive_failures} consecutive connection "
                        f"failures; probing again in {remaining:.2f}s",
                        retry_after_seconds=remaining,
                    )
                self._state = STATE_HALF_OPEN
                self._probe_in_flight = True
                self._publish_state()
                return
            # Half-open: one probe owns the slot.
            if self._probe_in_flight:
                raise CircuitOpenError(
                    f"Circuit breaker for {self.host} is half-open with a "
                    f"probe in flight; failing fast",
                    retry_after_seconds=self.reset_seconds,
                )
            self._probe_in_flight = True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != STATE_CLOSED:
                self._state = STATE_CLOSED
                self._publish_state()

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if self._state == STATE_HALF_OPEN:
                # The probe failed: the host is still down, restart cooldown.
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self._publish_state()
            elif (
                self._state == STATE_CLOSED
                and self.failure_threshold > 0
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = STATE_OPEN
                self._opened_at = self._clock()
                self._publish_state()


class RetryPolicy:
    """Retry budget + backoff schedule + the per-host breaker table.

    One policy instance may be shared by many clients; the breaker table is
    keyed by host so every client talking to the same address shares one
    failure gate.  ``breaker_failure_threshold=0`` disables breaking,
    ``max_attempts=1`` disables retrying — both leave :meth:`call` as a
    plain passthrough with typed errors intact.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_ms: float = 50.0,
        max_ms: float = 2000.0,
        breaker_failure_threshold: int = 5,
        breaker_reset_s: float = 5.0,
        clock: "Callable[[], float]" = time.monotonic,
        sleep: "Callable[[float], None]" = time.sleep,
        rng: "random.Random | None" = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = int(max_attempts)
        self.base_ms = float(base_ms)
        self.max_ms = float(max_ms)
        self.breaker_failure_threshold = int(breaker_failure_threshold)
        self.breaker_reset_s = float(breaker_reset_s)
        self._clock = clock
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self._registry = registry
        self._breakers: "dict[str, CircuitBreaker]" = {}
        self._breakers_lock = threading.Lock()

    @classmethod
    def from_config(cls, config: Any, **overrides: Any) -> "RetryPolicy":
        """Build a policy from the ``retry_*``/``breaker_*`` config knobs."""
        kwargs: "dict[str, Any]" = dict(
            max_attempts=config.retry_max_attempts,
            base_ms=config.retry_base_ms,
            max_ms=config.retry_max_ms,
            breaker_failure_threshold=config.breaker_failure_threshold,
            breaker_reset_s=config.breaker_reset_s,
        )
        kwargs.update(overrides)
        return cls(**kwargs)

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def breaker_for(self, host: str) -> CircuitBreaker:
        with self._breakers_lock:
            breaker = self._breakers.get(host)
            if breaker is None:
                breaker = self._breakers[host] = CircuitBreaker(
                    host,
                    failure_threshold=self.breaker_failure_threshold,
                    reset_seconds=self.breaker_reset_s,
                    clock=self._clock,
                    registry=self._registry,
                )
            return breaker

    # ------------------------------------------------------------------
    # the schedule
    # ------------------------------------------------------------------
    def backoff_seconds(self, attempt: int, hint: "float | None" = None) -> float:
        """Sleep before retry number ``attempt`` (0-based): full jitter.

        The server's ``Retry-After`` hint floors the draw — sleeping less
        than the hint is a guaranteed second rejection.
        """
        cap_ms = min(self.max_ms, self.base_ms * (2.0 ** attempt))
        delay = self._rng.uniform(0.0, cap_ms / 1000.0)
        if hint is not None:
            delay = max(delay, float(hint))
        return delay

    @staticmethod
    def is_retryable(exc: BaseException, idempotent: bool) -> bool:
        """Whether one failed attempt may be repeated.

        The deciding question is never "is the error transient" alone but
        "could the server have acted before failing":

        * typed transient rejections (429 rate limit, 503 overload/drain)
          were refused *before* any state change — always retryable;
        * a connection that failed before the request went out is always
          retryable; one that died after, only for idempotent calls;
        * a 500 may have happened after the state change — idempotent only;
        * everything else (400s, 404s, 504 deadline, breaker-open) repeats
          to the same answer or a dead budget: never retried.
        """
        if isinstance(exc, CircuitOpenError):
            return False
        if isinstance(exc, RetryableError):
            return True
        if isinstance(exc, ConnectionFailedError):
            return idempotent or not exc.request_sent
        if isinstance(exc, InternalServiceError):
            return idempotent
        return False

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def call(
        self,
        fn: "Callable[[], T]",
        idempotent: bool = False,
        host: "str | None" = None,
        operation: str = "call",
    ) -> T:
        """Run ``fn`` under the attempt budget, breaker, and deadline.

        ``host`` engages that host's circuit breaker (connection failures
        trip it, any success closes it).  The deadline contextvar, when
        set, vetoes both a new attempt after expiry and any backoff sleep
        that would outlive the remaining budget.
        """
        breaker = self.breaker_for(host) if host else None
        attempt = 0
        while True:
            if breaker is not None:
                breaker.allow()
            try:
                result = fn()
            except BaseException as exc:
                if breaker is not None:
                    if isinstance(exc, ConnectionFailedError):
                        breaker.record_failure()
                    elif not isinstance(exc, CircuitOpenError):
                        # Any answer from the host — even an error envelope —
                        # proves the connection path works.
                        breaker.record_success()
                if attempt + 1 >= self.max_attempts or not self.is_retryable(
                    exc, idempotent
                ):
                    raise
                delay = self.backoff_seconds(
                    attempt, hint=getattr(exc, "retry_after_seconds", None)
                )
                deadline = current_deadline()
                if (
                    deadline is not None
                    and deadline.remaining_seconds() <= delay
                ):
                    # The sleep alone would eat the rest of the budget; a
                    # retry could only succeed after the caller stopped
                    # caring.  Surface the real error, not a late answer.
                    raise
                self.registry.counter(
                    "seesaw_retries_total",
                    "Client-side retry attempts, by operation and error type.",
                    labels=("operation", "error"),
                ).labels(operation, type(exc).__name__).inc()
                self._sleep(delay)
                attempt += 1
                continue
            if breaker is not None:
                breaker.record_success()
            return result
