"""The `/v1` structured error envelope and its exception mapping.

Every non-2xx `/v1` response carries one uniform envelope::

    {"error": {"code": "not_found",
               "message": "Unknown session 'session-9'",
               "retryable": false,
               "details": {"type": "UnknownResourceError", ...}}}

``code`` is a stable machine-readable string from the small registry below —
clients branch on it, never on the message text.  ``retryable`` tells a
client whether repeating the identical request can succeed (capacity and
rate-limit rejections are transient; validation failures are not).
``details`` carries auxiliary context: the library exception type the server
raised (which is also how the typed clients rebuild exceptions), the request
id injected by the middleware pipeline, and any error-specific fields.

The mapping is intentionally one table used in both directions: the app
layer encodes exceptions with :func:`encode_error`, the HTTP client decodes
envelopes back to the same exception types with :func:`decode_error`, so an
in-process caller and an HTTP caller observe identical error behaviour.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.exceptions import (
    DeadlineExceededError,
    IdempotencyConflictError,
    InternalServiceError,
    RateLimitedError,
    ReproError,
    RetryableError,
    ServiceOverloadedError,
    SessionError,
    TransportError,
    UnknownResourceError,
)


@dataclass(frozen=True)
class ErrorSpec:
    """How one exception family maps onto the wire."""

    status: int
    code: str
    retryable: bool


# Most-specific first: the encoder walks this list with isinstance, so a
# subclass must appear before its base or it would inherit the wrong code.
_SPECS: "tuple[tuple[type[BaseException], ErrorSpec], ...]" = (
    (RateLimitedError, ErrorSpec(429, "rate_limited", retryable=True)),
    (IdempotencyConflictError, ErrorSpec(409, "idempotency_conflict", retryable=False)),
    (ServiceOverloadedError, ErrorSpec(503, "overloaded", retryable=True)),
    (UnknownResourceError, ErrorSpec(404, "not_found", retryable=False)),
    # Not retryable *within the same call*: the caller's budget is spent.
    # A fresh call carries a fresh deadline, which is the caller's decision.
    (DeadlineExceededError, ErrorSpec(504, "deadline_exceeded", retryable=False)),
    (TransportError, ErrorSpec(400, "invalid_request", retryable=False)),
    # Session-state violations are request errors (the legacy family has
    # always answered them with 400; `/v1` keeps the status and adds the
    # distinct code so clients can still branch on the family).
    (SessionError, ErrorSpec(400, "session_state", retryable=False)),
    (InternalServiceError, ErrorSpec(500, "internal", retryable=True)),
    (ReproError, ErrorSpec(400, "bad_request", retryable=False)),
    (Exception, ErrorSpec(500, "internal", retryable=True)),
)

# Decoding picks the *first* entry per code (the most specific type), so a
# client rebuilds the exact exception family the server raised; the
# ``internal`` code lands on InternalServiceError, keeping transient server
# faults distinguishable (and retryable) client-side.
_CODE_TO_TYPE: "dict[str, type[ReproError]]" = {}
for _exc_type, _spec in _SPECS:
    if _spec.code not in _CODE_TO_TYPE and issubclass(_exc_type, ReproError):
        _CODE_TO_TYPE[_spec.code] = _exc_type


def error_spec(exc: BaseException) -> ErrorSpec:
    """The wire spec (status, code, retryable) for one raised exception."""
    for exc_type, spec in _SPECS:
        if isinstance(exc, exc_type):
            return spec
    return _SPECS[-1][1]  # pragma: no cover - Exception always matches


def encode_error(
    exc: BaseException,
    request_id: "str | None" = None,
    details: "Mapping[str, Any] | None" = None,
) -> "tuple[int, dict[str, Any]]":
    """Encode one exception as ``(status, envelope payload)``."""
    spec = error_spec(exc)
    merged: "dict[str, Any]" = {"type": type(exc).__name__}
    if request_id is not None:
        merged["request_id"] = request_id
    retry_after = getattr(exc, "retry_after_seconds", None)
    if retry_after is not None:
        merged["retry_after_seconds"] = float(retry_after)
    if details:
        merged.update(details)
    return spec.status, {
        "error": {
            "code": spec.code,
            "message": str(exc),
            "retryable": spec.retryable,
            "details": merged,
        }
    }


def decode_error(status: int, payload: Any) -> ReproError:
    """Rebuild the typed exception a `/v1` error envelope describes.

    Falls back to :class:`TransportError` when the body is not a well-formed
    envelope (a proxy error page, a truncated response), keeping the raw
    status visible in the message.
    """
    try:
        error = payload["error"]
        code = str(error["code"])
        message = str(error["message"])
    except Exception:
        return TransportError(f"Server returned HTTP {status}: {payload!r}")
    exc_type = _CODE_TO_TYPE.get(code, SessionError)
    exc = exc_type(message)
    if isinstance(exc, RetryableError):
        details = error.get("details")
        if isinstance(details, Mapping):
            hint = details.get("retry_after_seconds")
            if isinstance(hint, (int, float)):
                exc.retry_after_seconds = float(hint)
    return exc


def is_error_envelope(payload: Any) -> bool:
    """True when a decoded JSON body is a `/v1` error envelope."""
    return (
        isinstance(payload, Mapping)
        and isinstance(payload.get("error"), Mapping)
        and "code" in payload["error"]
    )
