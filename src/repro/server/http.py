"""Stdlib HTTP transport for the SeeSaw service.

A thin socket layer over :class:`~repro.server.app.SeeSawApp`:
``ThreadingHTTPServer`` gives us one thread per in-flight request (the
concurrency the :class:`~repro.server.manager.SessionManager` is built to
absorb), and the handler does nothing but read the body, delegate to the
app, and write the JSON response.

Typical embedded use::

    service = SeeSawService(config)
    service.register_dataset(dataset, embedding, cache_dir="...")
    with serve_in_background(SeeSawApp(SessionManager(service))) as server:
        client = ServiceClient(server.url)
        ...
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.server.app import SeeSawApp
from repro.server.middleware import Request


class SeeSawRequestHandler(BaseHTTPRequestHandler):
    """Reads one request, hands it to the app, writes the JSON response.

    Single-shot responses go out with a ``Content-Length``; streaming
    (NDJSON) responses are written with chunked transfer encoding, one chunk
    per record, flushed as produced so a client renders the first record
    before the last one is on the wire.
    """

    server: "SeeSawHTTPServer"
    server_version = "SeeSawHTTP/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        response = self.server.app.handle_request(
            Request(
                method=method,
                target=self.path,
                body=body,
                headers={key: value for key, value in self.headers.items()},
                client=self.client_address[0],
            )
        )
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        for name, value in response.headers.items():
            self.send_header(name, value)
        if response.stream is not None:
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            # Once the 200 + chunked header are on the wire the response
            # cannot be rewritten.  If the producer raises (or the client
            # disconnects) mid-stream the body is truncated without its
            # terminal chunk, and the connection MUST NOT be reused: the
            # next keep-alive request on this socket would be parsed
            # against the half-written chunked body.  Clients detect the
            # truncation through the missing terminal NDJSON 'end' record.
            try:
                for record in response.stream:
                    self._write_chunk(json.dumps(record).encode("utf-8") + b"\n")
                self.wfile.write(b"0\r\n\r\n")
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                # The client went away mid-stream; nothing left to tell it,
                # and a stack trace per closed browser tab is just noise.
                self.close_connection = True
            except Exception as exc:
                self.close_connection = True
                self.log_error("aborted NDJSON stream for %s: %r", self.path, exc)
            return
        if response.text is not None:
            encoded = response.text.encode("utf-8")
        else:
            encoded = json.dumps(response.payload).encode("utf-8")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")
        self.wfile.flush()

    def log_message(self, format: str, *args: object) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)


class SeeSawHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SeeSawApp`."""

    daemon_threads = True
    # socketserver's default listen backlog is 5; a burst of concurrent
    # clients (the load profile the coalescing scheduler exists for) would
    # get connection resets before a worker thread ever saw them.
    request_queue_size = 128

    def __init__(
        self,
        app: SeeSawApp,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
    ) -> None:
        super().__init__((host, port), SeeSawRequestHandler)
        self.app = app
        self.quiet = quiet

    @property
    def url(self) -> str:
        """The server's base URL (resolved port included)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class BackgroundServer:
    """A :class:`SeeSawHTTPServer` running on a daemon thread.

    Usable as a context manager; ``port=0`` (the default) binds an ephemeral
    port, read back through :attr:`url` once started.
    """

    def __init__(
        self, app: SeeSawApp, host: str = "127.0.0.1", port: int = 0, quiet: bool = True
    ) -> None:
        self.server = SeeSawHTTPServer(app, host=host, port=port, quiet=quiet)
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="seesaw-http", daemon=True
        )
        self._started = False

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return self.server.url

    def start(self) -> "BackgroundServer":
        """Start serving requests (idempotent)."""
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def stop(self) -> None:
        """Stop the server and release the socket."""
        if self._started:
            self.server.shutdown()
            self._thread.join(timeout=5.0)
            self._started = False
        self.server.server_close()

    def drain(self, timeout_s: "float | None" = None) -> bool:
        """Gracefully drain, then stop.

        Drain order matters: ``/healthz`` flips to ``draining`` and new
        sessions start failing with the typed 503 *first* (so load
        balancers and clients route away), in-flight requests get up to
        ``timeout_s`` (``config.drain_timeout_s`` by default) to finish,
        and only then does the listener close.  Returns what
        :meth:`SessionManager.drain` returned: ``True`` when nothing was
        cut off.
        """
        drained = self.server.app.manager.drain(timeout_s)
        self.stop()
        return drained

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_in_background(
    app: SeeSawApp, host: str = "127.0.0.1", port: int = 0, quiet: bool = True
) -> BackgroundServer:
    """Start ``app`` on a daemon thread; returns the (startable) server handle."""
    return BackgroundServer(app, host=host, port=port, quiet=quiet)


def serve_forever(
    app: SeeSawApp, host: str = "127.0.0.1", port: int = 8000, quiet: bool = False
) -> None:
    """Serve ``app`` on the calling thread until interrupted.

    SIGTERM (the orchestrator's stop signal) triggers a graceful drain:
    ``/healthz`` flips to ``draining``, new sessions are rejected with the
    typed 503, in-flight requests get ``config.drain_timeout_s`` to finish,
    then the listener closes.  Ctrl-C (SIGINT/KeyboardInterrupt) stays an
    immediate stop — interactive use should not wait out a drain window.
    """
    server = SeeSawHTTPServer(app, host=host, port=port, quiet=quiet)

    def _drain_and_stop() -> None:
        app.manager.drain()
        server.shutdown()

    previous_handler = None

    def _on_sigterm(signum: object, frame: object) -> None:  # pragma: no cover
        # serve_forever blocks this (main) thread, and server.shutdown()
        # deadlocks when called from the serving thread — so the drain runs
        # on its own thread and the handler returns immediately.
        threading.Thread(
            target=_drain_and_stop, name="seesaw-drain", daemon=True
        ).start()

    if threading.current_thread() is threading.main_thread():
        previous_handler = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        server.server_close()
