"""Request coalescing: gather concurrent ``/next`` calls into one cohort.

The HTTP transport gives every in-flight request its own thread.  Without
coalescing, N concurrent next-batch requests run N sequential engine rounds
(each serialized on its own session lock but each paying a full kernel
dispatch).  The :class:`NextBatchCoalescer` turns that thundering herd into
cohorts: the first arriving request becomes the *leader*, waits out the
configured window (waking early the moment the cohort is already full)
while followers enqueue behind it, then dispatches the
whole cohort through one call (``SessionManager._dispatch_batch`` → fused
:class:`~repro.engine.batch.BatchQueryEngine` scoring) and hands each waiter
its own result — or its own error, so a 404 for one session never fails the
cohort.

The added latency is bounded by the window (a few milliseconds); the win is
one GEMM and one pooled ``reduceat`` for the cohort instead of per-session
kernel dispatches, which is what keeps per-session latency flat as
concurrency grows (Table 6's scaling row).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

from repro.exceptions import (
    DeadlineExceededError,
    InternalServiceError,
    ServiceOverloadedError,
)
from repro.server.deadlines import Deadline
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    get_registry,
    observe_stage,
)

DispatchFn = Callable[
    ["list[tuple[str, int | None]]"], "Sequence[object]"
]


_PROMOTED = object()
"""Sentinel outcome: the waiter must take over leadership, not return."""


class _PendingRequest:
    """One waiter: its request, a wakeup event, and its eventual outcome."""

    __slots__ = ("session_id", "count", "event", "outcome", "enqueued_at", "deadline")

    def __init__(
        self,
        session_id: str,
        count: "int | None",
        deadline: "Deadline | None" = None,
    ) -> None:
        self.session_id = session_id
        self.count = count
        self.event = threading.Event()
        self.outcome: object = None
        self.enqueued_at = time.perf_counter()
        # The submitting request's deadline rides with the entry because the
        # cohort is serviced on the *leader's* thread — the contextvar scope
        # of the submitter is invisible there, the object is not.
        self.deadline = deadline


class NextBatchCoalescer:
    """Batches concurrent next-requests within a small time window."""

    def __init__(
        self,
        dispatch: DispatchFn,
        window_seconds: float,
        max_batch_size: int = 64,
        wait_timeout_seconds: float = 60.0,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if window_seconds < 0:
            raise ValueError("window_seconds must be >= 0")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self._dispatch = dispatch
        self.window_seconds = float(window_seconds)
        self.max_batch_size = int(max_batch_size)
        self.wait_timeout_seconds = float(wait_timeout_seconds)
        self._lock = threading.Lock()
        self._queue: "list[_PendingRequest]" = []
        self._leader_active = False
        # Set the moment the queue holds a full cohort, so the leader can
        # dispatch immediately instead of sleeping out the rest of its
        # window for fusion that cannot get any better.
        self._cohort_full = threading.Event()
        # Window accounting lives in the obs registry: counters for batches
        # and coalesced requests, a size histogram, and a high-water gauge.
        # /healthz reads them back through stats() (deprecation shim).
        self.metrics = registry if registry is not None else get_registry()
        self._batches = self.metrics.counter(
            "seesaw_coalescer_batches_total",
            "Cohorts dispatched by the next-batch coalescer.",
        )
        self._requests = self.metrics.counter(
            "seesaw_coalescer_requests_total",
            "Next-batch requests served through coalesced cohorts.",
        )
        self._batch_size = self.metrics.histogram(
            "seesaw_coalescer_batch_size",
            "Cohort size distribution of the next-batch coalescer.",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._largest_batch = self.metrics.gauge(
            "seesaw_coalescer_largest_batch",
            "High-water cohort size since process start.",
        )
        self._dispatch_mismatches = self.metrics.counter(
            "seesaw_coalescer_dispatch_mismatch_total",
            "Cohorts whose dispatch returned a mismatched outcome count.",
        )
        self._expired = self.metrics.counter(
            "seesaw_coalescer_expired_total",
            "Queued next-requests whose deadline expired before dispatch "
            "(failed with the typed 504, dropped from their cohort).",
        )

    def _waiter_timeout(self, entry: _PendingRequest) -> float:
        """One follower's wait bound: the configured timeout, deadline-capped.

        A small grace past the deadline keeps the *leader* the usual one to
        notice expiry (it fails the entry typed and cheap while draining the
        queue); the waiter's own wakeup is the backstop when no leader gets
        there.
        """
        if entry.deadline is None:
            return self.wait_timeout_seconds
        grace = min(0.05, self.wait_timeout_seconds)
        return entry.deadline.bound_wait(self.wait_timeout_seconds) + grace

    # ------------------------------------------------------------------
    # the one public entry point
    # ------------------------------------------------------------------
    def submit(
        self,
        session_id: str,
        count: "int | None" = None,
        deadline: "Deadline | None" = None,
    ) -> object:
        """Enqueue one request; block until its cohort is dispatched.

        Returns the request's own result, or raises its own exception —
        per-request failures never propagate to other cohort members.

        With a ``deadline``, the wait is bounded by the remaining budget:
        an entry whose budget runs out while still queued withdraws and
        raises the typed 504 (the session's state was not advanced), and
        the leader drops already-dead entries from cohorts before dispatch
        so an expired request never occupies a fused slot.

        Leadership is one cohort at a time: the leader waits out the
        window (or less, once the cohort is full), dispatches the first
        ``max_batch_size`` queued entries, and
        hands leadership to the oldest remaining waiter (promotion) instead
        of looping — so under sustained traffic no thread's own response is
        withheld while it services other people's cohorts.
        """
        entry = _PendingRequest(session_id, count, deadline)
        with self._lock:
            self._queue.append(entry)
            if len(self._queue) >= self.max_batch_size:
                self._cohort_full.set()
            is_leader = not self._leader_active
            if is_leader:
                self._leader_active = True
        while True:
            if is_leader:
                self._lead_one_cohort()
                is_leader = False
                # Our own entry was almost always in that cohort (FIFO); if
                # a long backlog pushed it out, fall through and wait like
                # any follower.
                continue
            if not entry.event.wait(timeout=self._waiter_timeout(entry)):
                timed_out, promoted = self._abandon(entry)
                if promoted:
                    is_leader = True
                    continue
                if timed_out:
                    # Still queued, never dispatched: safe to fail fast —
                    # the session's state was not advanced.
                    if entry.deadline is not None and entry.deadline.expired:
                        self._expired.inc()
                        entry.deadline.check("coalescer dispatch")
                    raise ServiceOverloadedError(
                        "Timed out waiting for the batch scheduler; retry"
                    )
                # In flight: the round *will* run (the cohort runner always
                # sets outcomes, even when dispatch raises), so wait it out
                # rather than abandoning a round that advances the session —
                # at this point the full timeout applies even to a dead
                # deadline, because the state change must be observed.
                if not entry.event.wait(timeout=self.wait_timeout_seconds):
                    raise ServiceOverloadedError(
                        "Batch dispatch wedged past two timeout windows"
                    )
            outcome = entry.outcome
            if outcome is _PROMOTED:
                # Oldest waiter takes over leadership; its own entry is
                # still queued and rides in the cohort it now dispatches.
                entry.event.clear()
                entry.outcome = None
                is_leader = True
                continue
            if isinstance(outcome, BaseException):
                raise outcome
            return outcome

    def _abandon(self, entry: _PendingRequest) -> "tuple[bool, bool]":
        """Try to withdraw a timed-out entry; returns (withdrawn, promoted).

        Races with the leader are settled under the lock: if the entry was
        already drained into a cohort it cannot be withdrawn (its round will
        run), and a promotion that landed just as the wait timed out is
        honored instead of dropped — otherwise leadership would be lost and
        every queued waiter stranded.
        """
        with self._lock:
            if entry.outcome is _PROMOTED:
                entry.event.clear()
                entry.outcome = None
                return False, True
            if entry.event.is_set():
                return False, False  # outcome arrived as we timed out
            try:
                self._queue.remove(entry)
            except ValueError:
                return False, False  # already in a cohort, in flight
            return True, False

    # ------------------------------------------------------------------
    # leader protocol
    # ------------------------------------------------------------------
    def _lead_one_cohort(self) -> None:
        """Wait out the window (or a full cohort), dispatch, hand off.

        The window is a *maximum*: once the queue already holds
        ``max_batch_size`` entries, more waiting cannot improve fusion, so
        the full-cohort event wakes the leader early instead of adding the
        rest of the window to every waiter's latency (the burst-arrival
        p99 regression the open-loop harness flushed out).
        """
        if self.window_seconds > 0:
            self._cohort_full.wait(timeout=self.window_seconds)
        with self._lock:
            cohort = self._queue[: self.max_batch_size]
            del self._queue[: self.max_batch_size]
            if len(self._queue) < self.max_batch_size:
                self._cohort_full.clear()
        # Fail already-dead entries typed and cheap instead of spending a
        # fused slot (and everyone else's GEMM time) on an answer nobody is
        # waiting for.  Their sessions were never advanced, so the 504 is
        # safe to retry with a fresh budget.
        live: "list[_PendingRequest]" = []
        for pending in cohort:
            if pending.deadline is not None and pending.deadline.expired:
                self._expired.inc()
                pending.outcome = DeadlineExceededError(
                    f"Deadline exceeded while queued for the batch "
                    f"scheduler: budget of {pending.deadline.budget_ms:.0f}ms "
                    f"overrun by {-pending.deadline.remaining_ms():.0f}ms"
                )
                pending.event.set()
            else:
                live.append(pending)
        if live:
            self._run_cohort(live)
        with self._lock:
            if self._queue:
                # Promote the oldest waiter; _leader_active stays True so
                # new arrivals keep enqueueing as followers.
                successor = self._queue[0]
                successor.outcome = _PROMOTED
                successor.event.set()
            else:
                self._leader_active = False

    def _run_cohort(self, cohort: "list[_PendingRequest]") -> None:
        entries = [(pending.session_id, pending.count) for pending in cohort]
        try:
            outcomes: "list[object]" = list(self._dispatch(entries))
        except BaseException as exc:  # defensive: fail waiters, don't strand them
            outcomes = [exc] * len(cohort)
        if len(outcomes) != len(cohort):
            # A dispatch that mispairs outcomes with entries must not strand
            # the tail waiters on their events (they would hang until the
            # wait timeout).  Trust the positional prefix, fail the rest
            # with a typed internal error, and drop any surplus.
            self._dispatch_mismatches.inc()
            error = InternalServiceError(
                f"Batch dispatch returned {len(outcomes)} outcomes for a "
                f"cohort of {len(cohort)} requests"
            )
            del outcomes[len(cohort):]
            outcomes.extend([error] * (len(cohort) - len(outcomes)))
        self._batches.inc()
        self._requests.inc(len(cohort))
        self._batch_size.observe(len(cohort))
        self._largest_batch.set_max(len(cohort))
        # coalesce_wait: enqueue to outcome-ready, per member — the window
        # sleep plus queueing delay each waiter actually paid for fusion.
        now = time.perf_counter()
        for pending, outcome in zip(cohort, outcomes):
            observe_stage("coalesce_wait", now - pending.enqueued_at)
            pending.outcome = outcome
            pending.event.set()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> "dict[str, int]":
        """Telemetry snapshot for ``/healthz``.

        Deprecation shim: the counts moved into the obs registry
        (``seesaw_coalescer_*``); this reads the same series back in the
        pre-obs dict shape so existing ``/healthz`` consumers keep working.
        """
        return {
            "batches_dispatched": int(self._batches.value),
            "requests_coalesced": int(self._requests.value),
            "largest_batch": int(self._largest_batch.value),
        }
