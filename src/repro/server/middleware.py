"""App-layer middleware pipeline for the SeeSaw service.

The `/v1` redesign moved cross-cutting transport concerns out of the route
handlers and into a small composable pipeline that wraps the router:

* :class:`RequestIdMiddleware` — every request gets a request id (the
  client's ``X-Request-Id`` when supplied, else a generated one), echoed on
  the response, bound to the tracing context
  (:func:`repro.obs.set_request_id`) and threaded into error envelopes and
  access logs;
* :class:`AccessLogMiddleware` — one structured log record per request
  (method, path, status, duration, request id, client key, route template,
  pipeline stage) on the ``repro.server.access`` logger; also the
  per-request observability anchor — it opens the span collector, records
  the request counter/latency histograms into the metrics registry, and
  emits the structured slow-request log (``repro.server.slow``) with the
  per-stage span breakdown when a request exceeds the configured threshold;
* :class:`RateLimitMiddleware` — a per-client token bucket; a drained
  bucket raises :class:`~repro.exceptions.RateLimitedError`, which the app
  encodes as the structured 429 envelope (with a ``Retry-After`` refill
  hint);
* :class:`DeadlineMiddleware` — parses the ``X-Deadline-Ms`` budget header
  (or applies the configured default) and binds the resulting
  :class:`~repro.server.deadlines.Deadline` to the request context, so
  every layer below can bound its waits and fail dead requests with the
  typed 504 instead of finishing work nobody is waiting for;
* :class:`AdmissionControlMiddleware` — a bounded in-flight gauge
  (:class:`InFlightTracker`); past ``max_in_flight`` new work is shed with
  a 503 + ``Retry-After`` *before* it queues, and sustained overload
  triggers the service's graceful-degradation hook (graph-ANN ``ef``
  lowered toward the configured floor) until load drains.

Middlewares see the transport-agnostic :class:`Request`/:class:`Response`
pair, so the pipeline runs identically under the HTTP transport and under
direct in-process ``SeeSawApp.handle`` calls (the unit tests drive it
without a socket).

Rejections raised *inside* the pipeline (429 from the limiter, 400 from a
decoder) never reach the access-log middleware's normal path — the app's
backstop handler catches them and emits the **same record shape** through
:func:`emit_access_record` / :func:`record_request_metrics`, so every
request produces one complete access record and one counter increment no
matter where in the pipeline it died.  The ``stage`` field says which path
produced the record (``"handler"`` vs ``"middleware"``).
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence
from urllib.parse import urlsplit

from repro.exceptions import RateLimitedError, ServiceOverloadedError
from repro.server.deadlines import (
    DEADLINE_HEADER,
    Deadline,
    deadline_scope,
    parse_deadline_header,
)
from repro.obs import (
    MetricsRegistry,
    begin_request_trace,
    end_request_trace,
    get_registry,
    reset_request_id,
    set_request_id,
)

ACCESS_LOGGER_NAME = "repro.server.access"
SLOW_LOGGER_NAME = "repro.server.slow"

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
"""Content type of the Prometheus text exposition format."""


@dataclass
class Request:
    """One decoded transport request, independent of the socket layer."""

    method: str
    target: str
    body: "bytes | None" = None
    headers: "Mapping[str, str]" = field(default_factory=dict)
    client: "str | None" = None
    request_id: "str | None" = None

    def header(self, name: str, default: "str | None" = None) -> "str | None":
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default

    @property
    def client_key(self) -> str:
        """The identity rate limiting and access logs attribute requests to."""
        return self.header("x-client-id") or self.client or "anonymous"


@dataclass
class Response:
    """One transport response: a JSON payload, an NDJSON stream, or text.

    Exactly one of ``payload`` (single-shot JSON body), ``stream``
    (iterator of JSON-serializable records, one NDJSON line each) and
    ``text`` (a plain-text body — the Prometheus exposition format) is set.
    """

    status: int
    payload: "dict[str, Any] | None" = None
    headers: "dict[str, str]" = field(default_factory=dict)
    stream: "Iterator[dict[str, Any]] | None" = None
    text: "str | None" = None

    @property
    def content_type(self) -> str:
        if self.stream is not None:
            return "application/x-ndjson"
        if self.text is not None:
            return PROMETHEUS_CONTENT_TYPE
        return "application/json"


Handler = Callable[[Request], Response]
Middleware = Callable[[Request, Handler], Response]


class MiddlewarePipeline:
    """Composes middlewares around an endpoint, outermost first."""

    def __init__(self, middlewares: "Sequence[Middleware]") -> None:
        self.middlewares = tuple(middlewares)

    def run(self, request: Request, endpoint: Handler) -> Response:
        handler = endpoint
        for middleware in reversed(self.middlewares):
            handler = _bind(middleware, handler)
        return handler(request)


def _bind(middleware: Middleware, inner: Handler) -> Handler:
    def handler(request: Request) -> Response:
        return middleware(request, inner)

    return handler


def route_template(target: str) -> str:
    """Collapse a request target onto its route template.

    Metric labels must stay bounded, so raw paths (which embed session ids)
    never reach a label — every target maps onto one of the fixed templates
    (``/v1/sessions/{id}/next``, ...) and anything unrecognized onto
    ``.../other``.
    """
    path = urlsplit(target).path
    segments = [segment for segment in path.split("/") if segment]
    prefix = ""
    if segments[:1] == ["v1"]:
        prefix = "/v1"
        segments = segments[1:]
    if not segments:
        return prefix or "/"
    head = segments[0]
    if head in ("healthz", "capabilities", "metrics") and len(segments) == 1:
        return f"{prefix}/{head}"
    if head == "sessions":
        rest = segments[1:]
        if not rest:
            return f"{prefix}/sessions"
        if rest == ["batch-next"]:
            return f"{prefix}/sessions/batch-next"
        if len(rest) == 1:
            return f"{prefix}/sessions/{{id}}"
        if len(rest) == 2 and rest[1] in ("next", "feedback"):
            return f"{prefix}/sessions/{{id}}/{rest[1]}"
    if head == "datasets":
        rest = segments[1:]
        if not rest:
            return f"{prefix}/datasets"
        if len(rest) == 1:
            return f"{prefix}/datasets/{{name}}"
        if len(rest) == 2 and rest[1] in ("upsert", "delete", "merge"):
            return f"{prefix}/datasets/{{name}}/{rest[1]}"
    return f"{prefix}/other"


def emit_access_record(
    logger: logging.Logger,
    request: Request,
    status: int,
    duration_ms: float,
    stage: str,
) -> None:
    """The one access-record shape, shared by every request outcome.

    ``stage`` says where the response came from: ``"handler"`` for requests
    that reached the router, ``"middleware"`` for pipeline-raised rejections
    (429/400 before the handler).  Both paths carry the full field set —
    request id, client, status, real measured duration, route template — so
    log consumers never see a partial record.
    """
    logger.info(
        "%s %s -> %d (%.2fms)",
        request.method,
        request.target,
        status,
        duration_ms,
        extra={
            "request_id": request.request_id,
            "client": request.client_key,
            "status": status,
            "duration_ms": duration_ms,
            "route": route_template(request.target),
            "stage": stage,
        },
    )


def record_request_metrics(
    registry: MetricsRegistry,
    request: Request,
    status: int,
    duration_seconds: float,
    rejected: bool = False,
) -> None:
    """Count one finished request in the registry (any pipeline outcome)."""
    route = route_template(request.target)
    registry.counter(
        "seesaw_requests_total",
        "Requests finished, by method, route template and status.",
        labels=("method", "route", "status"),
    ).labels(request.method, route, str(status)).inc()
    registry.histogram(
        "seesaw_request_seconds",
        "End-to-end request latency through the middleware pipeline.",
        labels=("route",),
    ).labels(route).observe(duration_seconds)
    if rejected:
        registry.counter(
            "seesaw_rejections_total",
            "Requests rejected inside the middleware pipeline "
            "(rate limiting, malformed transport), by status.",
            labels=("status",),
        ).labels(str(status)).inc()


class RequestIdMiddleware:
    """Assigns each request an id, echoes it, binds the tracing context."""

    HEADER = "X-Request-Id"

    def __call__(self, request: Request, handler: Handler) -> Response:
        request.request_id = request.header(self.HEADER) or uuid.uuid4().hex
        # Bind the id to the tracing contextvar so any layer below — engine
        # spans, slow logs, future exporters — can tag diagnostics with the
        # originating request without an argument threaded through.
        token = set_request_id(request.request_id)
        try:
            response = handler(request)
        finally:
            reset_request_id(token)
        response.headers.setdefault(self.HEADER, request.request_id)
        return response


class AccessLogMiddleware:
    """Structured access log + request metrics + slow-request detection."""

    def __init__(
        self,
        logger: "logging.Logger | None" = None,
        clock: "Callable[[], float]" = time.perf_counter,
        registry: "MetricsRegistry | None" = None,
        slow_request_ms: float = 0.0,
        slow_logger: "logging.Logger | None" = None,
    ) -> None:
        self.logger = logger or logging.getLogger(ACCESS_LOGGER_NAME)
        self.slow_logger = slow_logger or logging.getLogger(SLOW_LOGGER_NAME)
        self._clock = clock
        self._registry = registry
        self.slow_request_ms = float(slow_request_ms)
        self.requests_served = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def __call__(self, request: Request, handler: Handler) -> Response:
        start = self._clock()
        # Open the per-request span collector: every trace_span the handler
        # opens below lands here (contextvars isolate concurrent requests).
        trace_token = begin_request_trace()
        try:
            response = handler(request)
        finally:
            trace = end_request_trace(trace_token)
        elapsed_ms = (self._clock() - start) * 1000.0
        self.requests_served += 1
        emit_access_record(
            self.logger, request, response.status, elapsed_ms, stage="handler"
        )
        record_request_metrics(
            self.registry, request, response.status, elapsed_ms / 1000.0
        )
        if self.slow_request_ms > 0.0 and elapsed_ms >= self.slow_request_ms:
            stages = trace.stage_millis() if trace is not None else {}
            self.registry.counter(
                "seesaw_slow_requests_total",
                "Requests slower than telemetry.slow_request_ms, by route.",
                labels=("route",),
            ).labels(route_template(request.target)).inc()
            self.slow_logger.warning(
                "slow request %s %s -> %d (%.2fms >= %.2fms) stages=%s",
                request.method,
                request.target,
                response.status,
                elapsed_ms,
                self.slow_request_ms,
                stages,
                extra={
                    "request_id": request.request_id,
                    "client": request.client_key,
                    "status": response.status,
                    "duration_ms": elapsed_ms,
                    "route": route_template(request.target),
                    "threshold_ms": self.slow_request_ms,
                    "stages": stages,
                },
            )
        return response


class RateLimitMiddleware:
    """Token-bucket rate limiting per client key.

    Each client (``X-Client-Id`` header, else remote address) owns a bucket
    of ``burst`` tokens refilled at ``rate_per_second``.  A request with no
    token available raises :class:`RateLimitedError` — the app layer maps it
    to the structured 429 envelope (``retryable: true``, with a retry hint
    in the message).

    The bucket table is bounded: past ``max_clients`` the least-recently
    seen bucket is dropped (a dropped client simply starts a fresh, full
    bucket — bias towards availability, not towards punishing returners).
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: int,
        clock: "Callable[[], float]" = time.monotonic,
        max_clients: int = 1024,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be > 0; gate construction "
                             "on the config knob instead of passing 0")
        self.rate_per_second = float(rate_per_second)
        self.burst = max(1, int(burst))
        self.max_clients = int(max_clients)
        self._clock = clock
        self._lock = threading.Lock()
        # client key -> [tokens, last_refill]; dict order doubles as the
        # recency order (entries are re-inserted on every touch).
        self._buckets: "dict[str, list[float]]" = {}
        self.rejected_requests = 0

    def __call__(self, request: Request, handler: Handler) -> Response:
        self._take_token(request.client_key)
        return handler(request)

    def _take_token(self, client_key: str) -> None:
        now = self._clock()
        with self._lock:
            bucket = self._buckets.pop(client_key, None)
            if bucket is None:
                bucket = [float(self.burst), now]
            tokens, last_refill = bucket
            tokens = min(
                float(self.burst),
                tokens + (now - last_refill) * self.rate_per_second,
            )
            if tokens < 1.0:
                # Re-insert before raising so the drained state (and its
                # refill clock) survives the rejected request.
                self._buckets[client_key] = [tokens, now]
                self.rejected_requests += 1
                # The limiter knows exactly when the next token lands, so
                # the 429 carries a real refill time, not a guess — the app
                # turns it into the Retry-After header and both clients
                # surface it as ``exc.retry_after_seconds``.
                retry_after = (1.0 - tokens) / self.rate_per_second
                raise RateLimitedError(
                    f"Rate limit exceeded for client '{client_key}': "
                    f"{self.rate_per_second:g} requests/s sustained "
                    f"(burst {self.burst}); retry in {retry_after:.2f}s",
                    retry_after_seconds=retry_after,
                )
            self._buckets[client_key] = [tokens - 1.0, now]
            while len(self._buckets) > self.max_clients:
                self._buckets.pop(next(iter(self._buckets)))


class DeadlineMiddleware:
    """Binds each request's deadline budget to the request context.

    The budget comes from the client's ``X-Deadline-Ms`` header when
    present, else from the configured server default (``0`` = none).  A
    request that arrives already expired (a clock-skewed client shipping a
    dead budget) is rejected here with the typed 504 before any routing or
    session work happens; a malformed header is a 400.
    """

    HEADER = DEADLINE_HEADER

    def __init__(self, default_deadline_ms: float = 0.0) -> None:
        self.default_deadline_ms = float(default_deadline_ms)

    def __call__(self, request: Request, handler: Handler) -> Response:
        raw = request.header(self.HEADER)
        if raw is not None:
            deadline = parse_deadline_header(raw)
        elif self.default_deadline_ms > 0.0:
            deadline = Deadline(self.default_deadline_ms)
        else:
            return handler(request)
        with deadline_scope(deadline):
            deadline.check("routing")
            return handler(request)


class InFlightTracker:
    """The service's bounded in-flight gauge.

    One instance is shared by three consumers: the
    :class:`AdmissionControlMiddleware` (admit or shed), ``/healthz`` (the
    current count), and the graceful-degradation hook (``on_overload`` fires
    with ``True`` when a request is shed at the bound and with ``False``
    once in-flight drains back to ``resume_fraction`` of the limit — the
    hysteresis keeps the service from flapping between full-quality and
    degraded search on every admit/release).
    """

    def __init__(
        self,
        limit: int = 0,
        on_overload: "Callable[[bool], None] | None" = None,
        resume_fraction: float = 0.5,
    ) -> None:
        self.limit = int(limit)
        self.on_overload = on_overload
        self._resume_below = max(1.0, self.limit * float(resume_fraction))
        self._lock = threading.Lock()
        self._count = 0
        self._overloaded = False

    @property
    def count(self) -> int:
        return self._count

    @property
    def overloaded(self) -> bool:
        return self._overloaded

    def try_enter(self) -> bool:
        """Admit one request, or refuse (and mark overload) at the bound."""
        fire: "bool | None" = None
        with self._lock:
            if 0 < self.limit <= self._count:
                if not self._overloaded:
                    self._overloaded = True
                    fire = True
                admitted = False
            else:
                self._count += 1
                admitted = True
        if fire is not None and self.on_overload is not None:
            self.on_overload(fire)
        return admitted

    def release(self) -> None:
        fire: "bool | None" = None
        with self._lock:
            self._count = max(0, self._count - 1)
            if self._overloaded and self._count <= self._resume_below:
                self._overloaded = False
                fire = False
        if fire is not None and self.on_overload is not None:
            self.on_overload(fire)


class AdmissionControlMiddleware:
    """Sheds load with a cheap 503 before queueing collapse.

    Every request an unbounded server accepts past its concurrency knee
    still costs a thread, a coalescer slot, and queue time that inflates
    everyone else's latency; rejecting at the door costs one envelope.
    Health, capabilities and metrics stay exempt — overload is exactly when
    operators need them.

    The 503 carries ``Retry-After: retry_after_hint_s`` — a deliberate
    flat hint (the shedder cannot know when load will drain the way the
    rate limiter knows its refill time) that still gives well-behaved
    clients a jitter anchor better than hammering.
    """

    EXEMPT_ROUTES = frozenset(
        {
            "/healthz",
            "/capabilities",
            "/metrics",
            "/v1/healthz",
            "/v1/capabilities",
            "/v1/metrics",
        }
    )

    def __init__(
        self,
        tracker: InFlightTracker,
        registry: "MetricsRegistry | None" = None,
        retry_after_hint_s: float = 1.0,
    ) -> None:
        self.tracker = tracker
        self._registry = registry
        self.retry_after_hint_s = float(retry_after_hint_s)
        self.shed_requests = 0
        self.registry.gauge(
            "seesaw_in_flight",
            "Requests currently being processed (admission-control gauge).",
            callback=lambda: float(tracker.count),
        )

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def __call__(self, request: Request, handler: Handler) -> Response:
        if route_template(request.target) in self.EXEMPT_ROUTES:
            return handler(request)
        if not self.tracker.try_enter():
            self.shed_requests += 1
            self.registry.counter(
                "seesaw_shed_total",
                "Requests shed before processing, by reason.",
                labels=("reason",),
            ).labels("in_flight").inc()
            raise ServiceOverloadedError(
                f"Service is at its in-flight limit "
                f"({self.tracker.limit} requests); shedding to protect "
                f"latency of admitted work",
                retry_after_seconds=self.retry_after_hint_s,
            )
        try:
            return handler(request)
        finally:
            self.tracker.release()
