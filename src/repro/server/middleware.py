"""App-layer middleware pipeline for the SeeSaw service.

The `/v1` redesign moved cross-cutting transport concerns out of the route
handlers and into a small composable pipeline that wraps the router:

* :class:`RequestIdMiddleware` — every request gets a request id (the
  client's ``X-Request-Id`` when supplied, else a generated one), echoed on
  the response and threaded into error envelopes and access logs;
* :class:`AccessLogMiddleware` — one structured log record per request
  (method, path, status, duration, request id, client key) on the
  ``repro.server.access`` logger;
* :class:`RateLimitMiddleware` — a per-client token bucket; a drained
  bucket raises :class:`~repro.exceptions.RateLimitedError`, which the app
  encodes as the structured 429 envelope.

Middlewares see the transport-agnostic :class:`Request`/:class:`Response`
pair, so the pipeline runs identically under the HTTP transport and under
direct in-process ``SeeSawApp.handle`` calls (the unit tests drive it
without a socket).
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.exceptions import RateLimitedError

ACCESS_LOGGER_NAME = "repro.server.access"


@dataclass
class Request:
    """One decoded transport request, independent of the socket layer."""

    method: str
    target: str
    body: "bytes | None" = None
    headers: "Mapping[str, str]" = field(default_factory=dict)
    client: "str | None" = None
    request_id: "str | None" = None

    def header(self, name: str, default: "str | None" = None) -> "str | None":
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default

    @property
    def client_key(self) -> str:
        """The identity rate limiting and access logs attribute requests to."""
        return self.header("x-client-id") or self.client or "anonymous"


@dataclass
class Response:
    """One transport response: a JSON payload or an NDJSON stream.

    Exactly one of ``payload`` (single-shot JSON body) and ``stream``
    (iterator of JSON-serializable records, one NDJSON line each) is set.
    """

    status: int
    payload: "dict[str, Any] | None" = None
    headers: "dict[str, str]" = field(default_factory=dict)
    stream: "Iterator[dict[str, Any]] | None" = None

    @property
    def content_type(self) -> str:
        return (
            "application/x-ndjson" if self.stream is not None else "application/json"
        )


Handler = Callable[[Request], Response]
Middleware = Callable[[Request, Handler], Response]


class MiddlewarePipeline:
    """Composes middlewares around an endpoint, outermost first."""

    def __init__(self, middlewares: "Sequence[Middleware]") -> None:
        self.middlewares = tuple(middlewares)

    def run(self, request: Request, endpoint: Handler) -> Response:
        handler = endpoint
        for middleware in reversed(self.middlewares):
            handler = _bind(middleware, handler)
        return handler(request)


def _bind(middleware: Middleware, inner: Handler) -> Handler:
    def handler(request: Request) -> Response:
        return middleware(request, inner)

    return handler


class RequestIdMiddleware:
    """Assigns each request an id and echoes it on the response."""

    HEADER = "X-Request-Id"

    def __call__(self, request: Request, handler: Handler) -> Response:
        request.request_id = request.header(self.HEADER) or uuid.uuid4().hex
        response = handler(request)
        response.headers.setdefault(self.HEADER, request.request_id)
        return response


class AccessLogMiddleware:
    """Emits one structured access-log record per handled request."""

    def __init__(
        self,
        logger: "logging.Logger | None" = None,
        clock: "Callable[[], float]" = time.perf_counter,
    ) -> None:
        self.logger = logger or logging.getLogger(ACCESS_LOGGER_NAME)
        self._clock = clock
        self.requests_served = 0

    def __call__(self, request: Request, handler: Handler) -> Response:
        start = self._clock()
        response = handler(request)
        elapsed_ms = (self._clock() - start) * 1000.0
        self.requests_served += 1
        self.logger.info(
            "%s %s -> %d (%.2fms)",
            request.method,
            request.target,
            response.status,
            elapsed_ms,
            extra={
                "request_id": request.request_id,
                "client": request.client_key,
                "status": response.status,
                "duration_ms": elapsed_ms,
            },
        )
        return response


class RateLimitMiddleware:
    """Token-bucket rate limiting per client key.

    Each client (``X-Client-Id`` header, else remote address) owns a bucket
    of ``burst`` tokens refilled at ``rate_per_second``.  A request with no
    token available raises :class:`RateLimitedError` — the app layer maps it
    to the structured 429 envelope (``retryable: true``, with a retry hint
    in the message).

    The bucket table is bounded: past ``max_clients`` the least-recently
    seen bucket is dropped (a dropped client simply starts a fresh, full
    bucket — bias towards availability, not towards punishing returners).
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: int,
        clock: "Callable[[], float]" = time.monotonic,
        max_clients: int = 1024,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be > 0; gate construction "
                             "on the config knob instead of passing 0")
        self.rate_per_second = float(rate_per_second)
        self.burst = max(1, int(burst))
        self.max_clients = int(max_clients)
        self._clock = clock
        self._lock = threading.Lock()
        # client key -> [tokens, last_refill]; dict order doubles as the
        # recency order (entries are re-inserted on every touch).
        self._buckets: "dict[str, list[float]]" = {}
        self.rejected_requests = 0

    def __call__(self, request: Request, handler: Handler) -> Response:
        self._take_token(request.client_key)
        return handler(request)

    def _take_token(self, client_key: str) -> None:
        now = self._clock()
        with self._lock:
            bucket = self._buckets.pop(client_key, None)
            if bucket is None:
                bucket = [float(self.burst), now]
            tokens, last_refill = bucket
            tokens = min(
                float(self.burst),
                tokens + (now - last_refill) * self.rate_per_second,
            )
            if tokens < 1.0:
                # Re-insert before raising so the drained state (and its
                # refill clock) survives the rejected request.
                self._buckets[client_key] = [tokens, now]
                self.rejected_requests += 1
                retry_after = (1.0 - tokens) / self.rate_per_second
                raise RateLimitedError(
                    f"Rate limit exceeded for client '{client_key}': "
                    f"{self.rate_per_second:g} requests/s sustained "
                    f"(burst {self.burst}); retry in {retry_after:.2f}s"
                )
            self._buckets[client_key] = [tokens - 1.0, now]
            while len(self._buckets) > self.max_clients:
                self._buckets.pop(next(iter(self._buckets)))
