"""App-layer middleware pipeline for the SeeSaw service.

The `/v1` redesign moved cross-cutting transport concerns out of the route
handlers and into a small composable pipeline that wraps the router:

* :class:`RequestIdMiddleware` — every request gets a request id (the
  client's ``X-Request-Id`` when supplied, else a generated one), echoed on
  the response, bound to the tracing context
  (:func:`repro.obs.set_request_id`) and threaded into error envelopes and
  access logs;
* :class:`AccessLogMiddleware` — one structured log record per request
  (method, path, status, duration, request id, client key, route template,
  pipeline stage) on the ``repro.server.access`` logger; also the
  per-request observability anchor — it opens the span collector, records
  the request counter/latency histograms into the metrics registry, and
  emits the structured slow-request log (``repro.server.slow``) with the
  per-stage span breakdown when a request exceeds the configured threshold;
* :class:`RateLimitMiddleware` — a per-client token bucket; a drained
  bucket raises :class:`~repro.exceptions.RateLimitedError`, which the app
  encodes as the structured 429 envelope.

Middlewares see the transport-agnostic :class:`Request`/:class:`Response`
pair, so the pipeline runs identically under the HTTP transport and under
direct in-process ``SeeSawApp.handle`` calls (the unit tests drive it
without a socket).

Rejections raised *inside* the pipeline (429 from the limiter, 400 from a
decoder) never reach the access-log middleware's normal path — the app's
backstop handler catches them and emits the **same record shape** through
:func:`emit_access_record` / :func:`record_request_metrics`, so every
request produces one complete access record and one counter increment no
matter where in the pipeline it died.  The ``stage`` field says which path
produced the record (``"handler"`` vs ``"middleware"``).
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence
from urllib.parse import urlsplit

from repro.exceptions import RateLimitedError
from repro.obs import (
    MetricsRegistry,
    begin_request_trace,
    end_request_trace,
    get_registry,
    reset_request_id,
    set_request_id,
)

ACCESS_LOGGER_NAME = "repro.server.access"
SLOW_LOGGER_NAME = "repro.server.slow"

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
"""Content type of the Prometheus text exposition format."""


@dataclass
class Request:
    """One decoded transport request, independent of the socket layer."""

    method: str
    target: str
    body: "bytes | None" = None
    headers: "Mapping[str, str]" = field(default_factory=dict)
    client: "str | None" = None
    request_id: "str | None" = None

    def header(self, name: str, default: "str | None" = None) -> "str | None":
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default

    @property
    def client_key(self) -> str:
        """The identity rate limiting and access logs attribute requests to."""
        return self.header("x-client-id") or self.client or "anonymous"


@dataclass
class Response:
    """One transport response: a JSON payload, an NDJSON stream, or text.

    Exactly one of ``payload`` (single-shot JSON body), ``stream``
    (iterator of JSON-serializable records, one NDJSON line each) and
    ``text`` (a plain-text body — the Prometheus exposition format) is set.
    """

    status: int
    payload: "dict[str, Any] | None" = None
    headers: "dict[str, str]" = field(default_factory=dict)
    stream: "Iterator[dict[str, Any]] | None" = None
    text: "str | None" = None

    @property
    def content_type(self) -> str:
        if self.stream is not None:
            return "application/x-ndjson"
        if self.text is not None:
            return PROMETHEUS_CONTENT_TYPE
        return "application/json"


Handler = Callable[[Request], Response]
Middleware = Callable[[Request, Handler], Response]


class MiddlewarePipeline:
    """Composes middlewares around an endpoint, outermost first."""

    def __init__(self, middlewares: "Sequence[Middleware]") -> None:
        self.middlewares = tuple(middlewares)

    def run(self, request: Request, endpoint: Handler) -> Response:
        handler = endpoint
        for middleware in reversed(self.middlewares):
            handler = _bind(middleware, handler)
        return handler(request)


def _bind(middleware: Middleware, inner: Handler) -> Handler:
    def handler(request: Request) -> Response:
        return middleware(request, inner)

    return handler


def route_template(target: str) -> str:
    """Collapse a request target onto its route template.

    Metric labels must stay bounded, so raw paths (which embed session ids)
    never reach a label — every target maps onto one of the fixed templates
    (``/v1/sessions/{id}/next``, ...) and anything unrecognized onto
    ``.../other``.
    """
    path = urlsplit(target).path
    segments = [segment for segment in path.split("/") if segment]
    prefix = ""
    if segments[:1] == ["v1"]:
        prefix = "/v1"
        segments = segments[1:]
    if not segments:
        return prefix or "/"
    head = segments[0]
    if head in ("healthz", "capabilities", "metrics") and len(segments) == 1:
        return f"{prefix}/{head}"
    if head == "sessions":
        rest = segments[1:]
        if not rest:
            return f"{prefix}/sessions"
        if rest == ["batch-next"]:
            return f"{prefix}/sessions/batch-next"
        if len(rest) == 1:
            return f"{prefix}/sessions/{{id}}"
        if len(rest) == 2 and rest[1] in ("next", "feedback"):
            return f"{prefix}/sessions/{{id}}/{rest[1]}"
    return f"{prefix}/other"


def emit_access_record(
    logger: logging.Logger,
    request: Request,
    status: int,
    duration_ms: float,
    stage: str,
) -> None:
    """The one access-record shape, shared by every request outcome.

    ``stage`` says where the response came from: ``"handler"`` for requests
    that reached the router, ``"middleware"`` for pipeline-raised rejections
    (429/400 before the handler).  Both paths carry the full field set —
    request id, client, status, real measured duration, route template — so
    log consumers never see a partial record.
    """
    logger.info(
        "%s %s -> %d (%.2fms)",
        request.method,
        request.target,
        status,
        duration_ms,
        extra={
            "request_id": request.request_id,
            "client": request.client_key,
            "status": status,
            "duration_ms": duration_ms,
            "route": route_template(request.target),
            "stage": stage,
        },
    )


def record_request_metrics(
    registry: MetricsRegistry,
    request: Request,
    status: int,
    duration_seconds: float,
    rejected: bool = False,
) -> None:
    """Count one finished request in the registry (any pipeline outcome)."""
    route = route_template(request.target)
    registry.counter(
        "seesaw_requests_total",
        "Requests finished, by method, route template and status.",
        labels=("method", "route", "status"),
    ).labels(request.method, route, str(status)).inc()
    registry.histogram(
        "seesaw_request_seconds",
        "End-to-end request latency through the middleware pipeline.",
        labels=("route",),
    ).labels(route).observe(duration_seconds)
    if rejected:
        registry.counter(
            "seesaw_rejections_total",
            "Requests rejected inside the middleware pipeline "
            "(rate limiting, malformed transport), by status.",
            labels=("status",),
        ).labels(str(status)).inc()


class RequestIdMiddleware:
    """Assigns each request an id, echoes it, binds the tracing context."""

    HEADER = "X-Request-Id"

    def __call__(self, request: Request, handler: Handler) -> Response:
        request.request_id = request.header(self.HEADER) or uuid.uuid4().hex
        # Bind the id to the tracing contextvar so any layer below — engine
        # spans, slow logs, future exporters — can tag diagnostics with the
        # originating request without an argument threaded through.
        token = set_request_id(request.request_id)
        try:
            response = handler(request)
        finally:
            reset_request_id(token)
        response.headers.setdefault(self.HEADER, request.request_id)
        return response


class AccessLogMiddleware:
    """Structured access log + request metrics + slow-request detection."""

    def __init__(
        self,
        logger: "logging.Logger | None" = None,
        clock: "Callable[[], float]" = time.perf_counter,
        registry: "MetricsRegistry | None" = None,
        slow_request_ms: float = 0.0,
        slow_logger: "logging.Logger | None" = None,
    ) -> None:
        self.logger = logger or logging.getLogger(ACCESS_LOGGER_NAME)
        self.slow_logger = slow_logger or logging.getLogger(SLOW_LOGGER_NAME)
        self._clock = clock
        self._registry = registry
        self.slow_request_ms = float(slow_request_ms)
        self.requests_served = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    def __call__(self, request: Request, handler: Handler) -> Response:
        start = self._clock()
        # Open the per-request span collector: every trace_span the handler
        # opens below lands here (contextvars isolate concurrent requests).
        trace_token = begin_request_trace()
        try:
            response = handler(request)
        finally:
            trace = end_request_trace(trace_token)
        elapsed_ms = (self._clock() - start) * 1000.0
        self.requests_served += 1
        emit_access_record(
            self.logger, request, response.status, elapsed_ms, stage="handler"
        )
        record_request_metrics(
            self.registry, request, response.status, elapsed_ms / 1000.0
        )
        if self.slow_request_ms > 0.0 and elapsed_ms >= self.slow_request_ms:
            stages = trace.stage_millis() if trace is not None else {}
            self.registry.counter(
                "seesaw_slow_requests_total",
                "Requests slower than telemetry.slow_request_ms, by route.",
                labels=("route",),
            ).labels(route_template(request.target)).inc()
            self.slow_logger.warning(
                "slow request %s %s -> %d (%.2fms >= %.2fms) stages=%s",
                request.method,
                request.target,
                response.status,
                elapsed_ms,
                self.slow_request_ms,
                stages,
                extra={
                    "request_id": request.request_id,
                    "client": request.client_key,
                    "status": response.status,
                    "duration_ms": elapsed_ms,
                    "route": route_template(request.target),
                    "threshold_ms": self.slow_request_ms,
                    "stages": stages,
                },
            )
        return response


class RateLimitMiddleware:
    """Token-bucket rate limiting per client key.

    Each client (``X-Client-Id`` header, else remote address) owns a bucket
    of ``burst`` tokens refilled at ``rate_per_second``.  A request with no
    token available raises :class:`RateLimitedError` — the app layer maps it
    to the structured 429 envelope (``retryable: true``, with a retry hint
    in the message).

    The bucket table is bounded: past ``max_clients`` the least-recently
    seen bucket is dropped (a dropped client simply starts a fresh, full
    bucket — bias towards availability, not towards punishing returners).
    """

    def __init__(
        self,
        rate_per_second: float,
        burst: int,
        clock: "Callable[[], float]" = time.monotonic,
        max_clients: int = 1024,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError("rate_per_second must be > 0; gate construction "
                             "on the config knob instead of passing 0")
        self.rate_per_second = float(rate_per_second)
        self.burst = max(1, int(burst))
        self.max_clients = int(max_clients)
        self._clock = clock
        self._lock = threading.Lock()
        # client key -> [tokens, last_refill]; dict order doubles as the
        # recency order (entries are re-inserted on every touch).
        self._buckets: "dict[str, list[float]]" = {}
        self.rejected_requests = 0

    def __call__(self, request: Request, handler: Handler) -> Response:
        self._take_token(request.client_key)
        return handler(request)

    def _take_token(self, client_key: str) -> None:
        now = self._clock()
        with self._lock:
            bucket = self._buckets.pop(client_key, None)
            if bucket is None:
                bucket = [float(self.burst), now]
            tokens, last_refill = bucket
            tokens = min(
                float(self.burst),
                tokens + (now - last_refill) * self.rate_per_second,
            )
            if tokens < 1.0:
                # Re-insert before raising so the drained state (and its
                # refill clock) survives the rejected request.
                self._buckets[client_key] = [tokens, now]
                self.rejected_requests += 1
                retry_after = (1.0 - tokens) / self.rate_per_second
                raise RateLimitedError(
                    f"Rate limit exceeded for client '{client_key}': "
                    f"{self.rate_per_second:g} requests/s sustained "
                    f"(burst {self.burst}); retry in {retry_after:.2f}s"
                )
            self._buckets[client_key] = [tokens - 1.0, now]
            while len(self._buckets) > self.max_clients:
                self._buckets.pop(next(iter(self._buckets)))
