"""The transport-agnostic SeeSaw client API.

:class:`SeeSawClientProtocol` is the one client surface every caller — the
browser UI's backend, the benchmark harness, the contract and load suites —
programs against.  Two implementations exist:

* :class:`InProcessClient` (here) wraps a
  :class:`~repro.server.manager.SessionManager` directly — no sockets, no
  serialization, the embedding deployment mode;
* :class:`~repro.server.client.HTTPClient` speaks the `/v1` wire protocol
  over a real socket.

The contract suite (``tests/contract/test_client_protocol.py``) runs the
same scenario scripts through both and asserts identical results and
identical typed errors, which is the guarantee that makes "develop against
in-process, deploy against HTTP" safe.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence, TypeVar

from repro.exceptions import ReproError
from repro.server.api import (
    FeedbackRequest,
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    SessionListEntry,
    SessionPage,
    StartSessionRequest,
)
from repro.server.codec import validate_count
from repro.server.manager import SessionManager

if TYPE_CHECKING:
    from repro.server.retry import RetryPolicy

_T = TypeVar("_T")


class SeeSawClientProtocol(abc.ABC):
    """Everything a SeeSaw client can do, independent of transport."""

    # -- discovery -----------------------------------------------------
    @abc.abstractmethod
    def capabilities(self) -> "dict[str, Any]":
        """The server's negotiated features, limits, and compute topology."""

    @abc.abstractmethod
    def healthz(self) -> "dict[str, Any]":
        """Liveness plus live registry/telemetry counters."""

    @abc.abstractmethod
    def metrics_json(self) -> "dict[str, Any]":
        """The metrics registry in the JSON exposition shape.

        Every family with its series: counter/gauge values, histogram
        buckets with p50/p99/p999 estimates — ``GET /v1/metrics?format=json``
        over HTTP, the registry snapshot in process.
        """

    @abc.abstractmethod
    def metrics_text(self) -> str:
        """The metrics registry in the Prometheus text exposition format."""

    # -- session lifecycle ---------------------------------------------
    @abc.abstractmethod
    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        """Start a session; returns its summary (with the new session id)."""

    @abc.abstractmethod
    def session_info(self, session_id: str) -> SessionInfo:
        """Progress summary for one session."""

    @abc.abstractmethod
    def list_sessions(
        self, cursor: "str | None" = None, limit: "int | None" = None
    ) -> SessionPage:
        """One cursor-delimited page of live sessions, with telemetry."""

    @abc.abstractmethod
    def close_session(self, session_id: str) -> None:
        """Close a session."""

    # -- the search loop -----------------------------------------------
    @abc.abstractmethod
    def next_results(
        self, session_id: str, count: "int | None" = None
    ) -> NextResultsResponse:
        """Fetch the next result batch for a session."""

    @abc.abstractmethod
    def stream_next_results(
        self, session_id: str, count: "int | None" = None
    ) -> "Iterator[ResultItem]":
        """Fetch the next batch, yielding items as they arrive.

        Same results as :meth:`next_results`, incrementally: over HTTP the
        items decode straight off the chunked NDJSON stream, so a UI can
        render the first image of a large batch before the last one is on
        the wire.
        """

    @abc.abstractmethod
    def batch_next(
        self, requests: "Sequence[tuple[str, int | None]]"
    ) -> "list[NextResultsResponse | ReproError]":
        """Fetch next batches for many sessions in one fused round trip.

        Outcomes align positionally with ``requests``; a failed session
        comes back as the typed exception instance (not raised), so callers
        handle partial success uniformly across transports.
        """

    @abc.abstractmethod
    def give_feedback(
        self, request: FeedbackRequest, idempotency_key: "str | None" = None
    ) -> SessionInfo:
        """Submit feedback for one image of the session's current batch.

        Passing an ``idempotency_key`` makes retries safe: a replay of the
        same key and payload returns the original result without applying
        the feedback twice.
        """

    # -- live datasets (protocol revision 4) ---------------------------
    # Concrete defaults, not abstract methods: pre-revision-4 protocol
    # implementations (including test fakes) must keep constructing without
    # changes, and an implementation that never touches datasets should not
    # be forced to stub five methods.
    def list_datasets(self) -> "list[dict[str, Any]]":
        """All registered datasets' manifests (name, version, generation...)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the dataset surface"
        )

    def describe_dataset(self, name: str) -> "dict[str, Any]":
        """The registry manifest of one dataset."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the dataset surface"
        )

    def upsert_images(
        self, name: str, images: "Sequence[Any]"
    ) -> "dict[str, Any]":
        """Add or replace images in a live dataset; returns the new manifest."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the dataset surface"
        )

    def delete_images(
        self, name: str, image_ids: "Sequence[int]"
    ) -> "dict[str, Any]":
        """Delete images from a live dataset; returns the new manifest."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the dataset surface"
        )

    def merge_dataset(self, name: str) -> "dict[str, Any]":
        """Force a synchronous delta-segment compaction; returns the manifest."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the dataset surface"
        )

    # -- conveniences shared by every transport ------------------------
    def iter_sessions(
        self, page_size: "int | None" = None
    ) -> "Iterator[SessionListEntry]":
        """Walk the full session listing, following cursors page by page."""
        cursor: "str | None" = None
        while True:
            page = self.list_sessions(cursor=cursor, limit=page_size)
            yield from page.sessions
            if page.next_cursor is None:
                return
            cursor = page.next_cursor

    def close(self) -> None:
        """Release any transport resources (no-op by default)."""

    def __enter__(self) -> "SeeSawClientProtocol":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InProcessClient(SeeSawClientProtocol):
    """The protocol served by a :class:`SessionManager` in this process.

    Mirrors the `/v1` boundary exactly — including the request validation
    the app layer performs — so swapping it for an
    :class:`~repro.server.client.HTTPClient` changes latency, never
    behaviour.  That includes the resilience layer: with a
    ``retry_policy``, retryable rejections (429/503) back off and retry
    exactly as the HTTP client would (there is no transport here, so the
    breaker and connection-failure branches simply never fire), and calls
    wrapped in :func:`~repro.server.deadlines.deadline_scope` are deadline-
    checked by the manager through the shared contextvar.
    """

    def __init__(
        self,
        manager: SessionManager,
        retry_policy: "RetryPolicy | None" = None,
    ) -> None:
        self.manager = manager
        self.retry_policy = retry_policy

    def _call(
        self, fn: "Callable[[], _T]", idempotent: bool, operation: str
    ) -> _T:
        if self.retry_policy is None:
            return fn()
        return self.retry_policy.call(fn, idempotent=idempotent, operation=operation)

    def capabilities(self) -> "dict[str, Any]":
        return self._call(self.manager.capabilities, True, "capabilities")

    def healthz(self) -> "dict[str, Any]":
        return self._call(self.manager.health, True, "healthz")

    def metrics_json(self) -> "dict[str, Any]":
        return self._call(self.manager.metrics_json, True, "metrics")

    def metrics_text(self) -> str:
        return self._call(self.manager.metrics_text, True, "metrics")

    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        # Not idempotent: a replay after an ambiguous failure could orphan
        # a second session.  (In-process there is no ambiguous failure, but
        # the contract must match the HTTP client exactly.)
        return self._call(
            lambda: self.manager.start_session(request), False, "start_session"
        )

    def session_info(self, session_id: str) -> SessionInfo:
        return self._call(
            lambda: self.manager.session_info(session_id), True, "session_info"
        )

    def list_sessions(
        self, cursor: "str | None" = None, limit: "int | None" = None
    ) -> SessionPage:
        return self._call(
            lambda: self.manager.list_sessions(cursor=cursor, limit=limit),
            True,
            "list_sessions",
        )

    def close_session(self, session_id: str) -> None:
        self._call(lambda: self.manager.close_session(session_id), True, "close_session")

    def next_results(
        self, session_id: str, count: "int | None" = None
    ) -> NextResultsResponse:
        if count is not None:
            validate_count(count)
        # Not idempotent: /next advances the session cursor, so a blind
        # replay would silently skip a batch.
        return self._call(
            lambda: self.manager.next_results(session_id, count), False, "next"
        )

    def stream_next_results(
        self, session_id: str, count: "int | None" = None
    ) -> "Iterator[ResultItem]":
        # In-process there is no wire to stream over; the whole batch is
        # computed up front (exactly like the server side of the NDJSON
        # path) and handed out item by item.
        yield from self.next_results(session_id, count).items

    def batch_next(
        self, requests: "Sequence[tuple[str, int | None]]"
    ) -> "list[NextResultsResponse | ReproError]":
        for _, count in requests:
            if count is not None:
                validate_count(count)
        return self._call(
            lambda: self.manager.batch_next(requests), False, "batch_next"
        )

    def give_feedback(
        self, request: FeedbackRequest, idempotency_key: "str | None" = None
    ) -> SessionInfo:
        # Only safe to retry when the caller supplied an idempotency key —
        # the manager then dedupes the replay server-side.
        return self._call(
            lambda: self.manager.give_feedback(
                request, idempotency_key=idempotency_key
            ),
            idempotency_key is not None,
            "feedback",
        )

    # -- live datasets -------------------------------------------------
    def list_datasets(self) -> "list[dict[str, Any]]":
        return self._call(self.manager.list_datasets, True, "list_datasets")

    def describe_dataset(self, name: str) -> "dict[str, Any]":
        return self._call(
            lambda: self.manager.describe_dataset(name), True, "describe_dataset"
        )

    def upsert_images(
        self, name: str, images: "Sequence[Any]"
    ) -> "dict[str, Any]":
        # Not idempotent: an upsert replayed after an ambiguous outcome
        # would publish a second version with duplicate delta rows.
        return self._call(
            lambda: self.manager.upsert_images(name, images), False, "upsert_images"
        )

    def delete_images(
        self, name: str, image_ids: "Sequence[int]"
    ) -> "dict[str, Any]":
        # Not idempotent at the protocol level: a replayed delete of an
        # already-removed image is a typed 404, which a blind retry would
        # surface as a spurious failure.
        return self._call(
            lambda: self.manager.delete_images(name, image_ids),
            False,
            "delete_images",
        )

    def merge_dataset(self, name: str) -> "dict[str, Any]":
        return self._call(
            lambda: self.manager.force_merge(name), False, "merge_dataset"
        )
