"""Server layer: the query-aligner service mediating UI and index (§2)."""

from repro.server.api import (
    BoxPayload,
    FeedbackRequest,
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    StartSessionRequest,
)
from repro.server.service import SeeSawService

__all__ = [
    "SeeSawService",
    "StartSessionRequest",
    "BoxPayload",
    "FeedbackRequest",
    "NextResultsResponse",
    "ResultItem",
    "SessionInfo",
]
