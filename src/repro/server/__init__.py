"""Server layer: the query-aligner service mediating UI and index (§2).

Innermost out:

* :class:`SeeSawService` — the in-process registry of datasets, indexes, and
  live sessions (single-threaded);
* :class:`SessionManager` — thread-safe session engine (per-session locks,
  capacity limits, TTL eviction, idempotent feedback, double-checked index
  builds);
* :class:`SeeSawApp` — the versioned `/v1` wire protocol plus the legacy
  unversioned routes, behind a middleware pipeline (request ids, access
  logs, rate limiting), over the stdlib ``ThreadingHTTPServer`` transport;
* :class:`SeeSawClientProtocol` — the transport-agnostic client surface,
  implemented by :class:`InProcessClient` (no sockets) and
  :class:`HTTPClient` (the `/v1` wire client); :class:`ServiceClient` is the
  preserved legacy-route client.

Every layer records into the :mod:`repro.obs` metrics registry (request
counters and latency in the middleware, lock/coalesce waits in the manager,
fused-dispatch accounting in the service, per-stage spans in the engines);
``GET /v1/metrics`` exposes the registry in Prometheus text and JSON.
"""

from repro.server.api import (
    PROTOCOL_REVISION,
    PROTOCOL_VERSION,
    BoxPayload,
    DatasetInfo,
    FeedbackRequest,
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    SessionListEntry,
    SessionPage,
    StartSessionRequest,
)
from repro.server.app import SeeSawApp, default_middlewares
from repro.server.batching import NextBatchCoalescer
from repro.server.client import HTTPClient, ServiceClient
from repro.server.http import (
    BackgroundServer,
    SeeSawHTTPServer,
    serve_forever,
    serve_in_background,
)
from repro.server.manager import SessionManager
from repro.server.middleware import (
    PROMETHEUS_CONTENT_TYPE,
    AccessLogMiddleware,
    MiddlewarePipeline,
    RateLimitMiddleware,
    Request,
    RequestIdMiddleware,
    Response,
    emit_access_record,
    record_request_metrics,
    route_template,
)
from repro.server.protocol import InProcessClient, SeeSawClientProtocol
from repro.server.service import SeeSawService

__all__ = [
    "SeeSawService",
    "SessionManager",
    "SeeSawApp",
    "default_middlewares",
    "NextBatchCoalescer",
    "SeeSawClientProtocol",
    "InProcessClient",
    "HTTPClient",
    "ServiceClient",
    "SeeSawHTTPServer",
    "BackgroundServer",
    "serve_in_background",
    "serve_forever",
    "MiddlewarePipeline",
    "Request",
    "Response",
    "RequestIdMiddleware",
    "AccessLogMiddleware",
    "RateLimitMiddleware",
    "PROMETHEUS_CONTENT_TYPE",
    "emit_access_record",
    "record_request_metrics",
    "route_template",
    "PROTOCOL_VERSION",
    "PROTOCOL_REVISION",
    "StartSessionRequest",
    "BoxPayload",
    "DatasetInfo",
    "FeedbackRequest",
    "NextResultsResponse",
    "ResultItem",
    "SessionInfo",
    "SessionListEntry",
    "SessionPage",
]
