"""Server layer: the query-aligner service mediating UI and index (§2).

Three layers, innermost out:

* :class:`SeeSawService` — the in-process registry of datasets, indexes, and
  live sessions (single-threaded);
* :class:`SessionManager` — thread-safe session engine (per-session locks,
  capacity limits, TTL eviction, double-checked index builds);
* :class:`SeeSawApp` + the HTTP transport — JSON endpoints over stdlib
  ``ThreadingHTTPServer``, with :class:`ServiceClient` as the typed caller.
"""

from repro.server.api import (
    BoxPayload,
    FeedbackRequest,
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    StartSessionRequest,
)
from repro.server.app import SeeSawApp
from repro.server.batching import NextBatchCoalescer
from repro.server.client import ServiceClient
from repro.server.http import (
    BackgroundServer,
    SeeSawHTTPServer,
    serve_forever,
    serve_in_background,
)
from repro.server.manager import SessionManager
from repro.server.service import SeeSawService

__all__ = [
    "SeeSawService",
    "SessionManager",
    "SeeSawApp",
    "NextBatchCoalescer",
    "ServiceClient",
    "SeeSawHTTPServer",
    "BackgroundServer",
    "serve_in_background",
    "serve_forever",
    "StartSessionRequest",
    "BoxPayload",
    "FeedbackRequest",
    "NextResultsResponse",
    "ResultItem",
    "SessionInfo",
]
