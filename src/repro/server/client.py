"""Typed HTTP clients for the SeeSaw service.

Two clients live here:

* :class:`HTTPClient` — the `/v1` client, implementing the transport-
  agnostic :class:`~repro.server.protocol.SeeSawClientProtocol` (structured
  error envelopes, NDJSON streaming, idempotency keys, cursor paging);
* :class:`ServiceClient` — the original client for the legacy unversioned
  routes, preserved unchanged so pre-`/v1` callers keep working.

Both re-raise server-side errors as the exception types the in-process
service would have raised, so callers can switch transports without
changing their error handling.
"""

from __future__ import annotations

import http.client
import json
import socket
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Iterator, Mapping, Sequence

from repro.exceptions import (
    ConnectionFailedError,
    RateLimitedError,
    ReproError,
    ServiceOverloadedError,
    SessionError,
    TransportError,
    UnknownResourceError,
)
from repro.server.api import (
    FeedbackRequest,
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    SessionPage,
    StartSessionRequest,
)
from repro.server.codec import (
    decode_next_results_response,
    decode_result_item,
    decode_session_info,
    decode_session_page,
    encode_delete_request,
    encode_feedback_request,
    encode_start_session_request,
    encode_upsert_request,
)
from repro.server.deadlines import DEADLINE_HEADER, current_deadline
from repro.server.errors import decode_error
from repro.server.protocol import SeeSawClientProtocol
from repro.server.retry import RetryPolicy

_ERROR_TYPES: "dict[str, type[ReproError]]" = {
    "TransportError": TransportError,
    "UnknownResourceError": UnknownResourceError,
    "ServiceOverloadedError": ServiceOverloadedError,
    "SessionError": SessionError,
    "RateLimitedError": RateLimitedError,
}


class HTTPClient(SeeSawClientProtocol):
    """The `/v1` wire-protocol client — blocking, stdlib-only.

    ``client_id`` (sent as ``X-Client-Id``) names this caller for rate
    limiting and access logs; without it the server falls back to the
    remote address.

    ``retry_policy`` opts the client into the resilience layer
    (:mod:`repro.server.retry`): retry with jittered backoff on retryable
    errors, ``Retry-After`` honoured, the per-host circuit breaker engaged.
    ``None`` (the default) keeps the historical raise-first-error
    behaviour.  Calls wrapped in
    :func:`~repro.server.deadlines.deadline_scope` send their remaining
    budget as ``X-Deadline-Ms`` either way.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        client_id: "str | None" = None,
        retry_policy: "RetryPolicy | None" = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_id = client_id
        self.retry_policy = retry_policy
        self._host = urllib.parse.urlsplit(self.base_url).netloc or self.base_url

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------
    def capabilities(self) -> "dict[str, Any]":
        return self._request(
            "GET", "/v1/capabilities", idempotent=True, operation="capabilities"
        )

    def healthz(self) -> "dict[str, Any]":
        return self._request("GET", "/v1/healthz", idempotent=True, operation="healthz")

    def metrics_json(self) -> "dict[str, Any]":
        return self._request(
            "GET", "/v1/metrics?format=json", idempotent=True, operation="metrics"
        )

    def metrics_text(self) -> str:
        return self._request_text("GET", "/v1/metrics")

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        # Not idempotent: a retry after a connection died mid-request could
        # start a second (orphaned) session.  Clean 429/503 rejections
        # still retry — the server refused before creating anything.
        payload = self._request(
            "POST",
            "/v1/sessions",
            encode_start_session_request(request),
            operation="start_session",
        )
        return decode_session_info(payload)

    def session_info(self, session_id: str) -> SessionInfo:
        return decode_session_info(
            self._request(
                "GET",
                f"/v1/sessions/{session_id}",
                idempotent=True,
                operation="session_info",
            )
        )

    def list_sessions(
        self, cursor: "str | None" = None, limit: "int | None" = None
    ) -> SessionPage:
        params: "dict[str, str]" = {}
        if cursor is not None:
            params["cursor"] = cursor
        if limit is not None:
            params["limit"] = str(limit)
        path = "/v1/sessions"
        if params:
            path += "?" + urllib.parse.urlencode(params)
        return decode_session_page(
            self._request("GET", path, idempotent=True, operation="list_sessions")
        )

    def close_session(self, session_id: str) -> None:
        self._request(
            "DELETE",
            f"/v1/sessions/{session_id}",
            idempotent=True,
            operation="close_session",
        )

    # ------------------------------------------------------------------
    # the search loop
    # ------------------------------------------------------------------
    def next_results(
        self, session_id: str, count: "int | None" = None
    ) -> NextResultsResponse:
        path = f"/v1/sessions/{session_id}/next"
        if count is not None:
            path += f"?count={count}"
        # GET in shape only: each call advances the session's result
        # cursor, so a blind replay after a mid-flight failure would skip a
        # batch.  Clean pre-dispatch rejections (429/503/504) still retry.
        return decode_next_results_response(
            self._request("GET", path, operation="next")
        )

    def stream_next_results(
        self, session_id: str, count: "int | None" = None
    ) -> "Iterator[ResultItem]":
        """Decode items straight off the chunked NDJSON response.

        The terminal ``end`` record is required: a stream that stops
        without it was truncated (server died mid-batch), and silently
        yielding the partial batch would look exactly like a complete one.
        """
        path = f"/v1/sessions/{session_id}/next?stream=ndjson"
        if count is not None:
            path += f"&count={count}"
        saw_end = False
        for record in self._stream(path):
            kind = record.get("kind")
            if kind == "item":
                yield decode_result_item(record["item"])
            elif kind == "end":
                saw_end = True
            elif kind != "meta":
                raise TransportError(f"Unexpected NDJSON record kind '{kind}'")
        if not saw_end:
            raise TransportError(
                "NDJSON stream ended without the terminal 'end' record "
                "(truncated response)"
            )

    def batch_next(
        self, requests: "Sequence[tuple[str, int | None]]"
    ) -> "list[NextResultsResponse | ReproError]":
        payload = {
            "requests": [
                {"session_id": session_id, **({} if count is None else {"count": count})}
                for session_id, count in requests
            ]
        }
        data = self._request(
            "POST", "/v1/sessions/batch-next", payload, operation="batch_next"
        )
        return [self._decode_outcome(item) for item in data["results"]]

    def give_feedback(
        self, request: FeedbackRequest, idempotency_key: "str | None" = None
    ) -> SessionInfo:
        headers = {} if idempotency_key is None else {"Idempotency-Key": idempotency_key}
        # With an idempotency key the server dedupes replays, which is what
        # makes retrying a maybe-applied feedback submission safe.
        payload = self._request(
            "POST",
            f"/v1/sessions/{request.session_id}/feedback",
            encode_feedback_request(request),
            headers=headers,
            idempotent=idempotency_key is not None,
            operation="feedback",
        )
        return decode_session_info(payload)

    # ------------------------------------------------------------------
    # live datasets (protocol revision 4)
    # ------------------------------------------------------------------
    def list_datasets(self) -> "list[dict[str, Any]]":
        data = self._request(
            "GET", "/v1/datasets", idempotent=True, operation="list_datasets"
        )
        return list(data["datasets"])

    def describe_dataset(self, name: str) -> "dict[str, Any]":
        return self._request(
            "GET",
            f"/v1/datasets/{urllib.parse.quote(name)}",
            idempotent=True,
            operation="describe_dataset",
        )

    def upsert_images(
        self, name: str, images: "Sequence[Any]"
    ) -> "dict[str, Any]":
        # Not idempotent: a replay after an ambiguous outcome would publish
        # a second version with duplicate delta rows.
        return self._request(
            "POST",
            f"/v1/datasets/{urllib.parse.quote(name)}/upsert",
            encode_upsert_request(images),
            operation="upsert_images",
        )

    def delete_images(
        self, name: str, image_ids: "Sequence[int]"
    ) -> "dict[str, Any]":
        return self._request(
            "POST",
            f"/v1/datasets/{urllib.parse.quote(name)}/delete",
            encode_delete_request(image_ids),
            operation="delete_images",
        )

    def merge_dataset(self, name: str) -> "dict[str, Any]":
        # Merging an already-compacted dataset is a no-op server-side, but
        # the manifest it returns reflects whichever attempt ran — keep the
        # retry semantics aligned with the other mutations.
        return self._request(
            "POST",
            f"/v1/datasets/{urllib.parse.quote(name)}/merge",
            {},
            operation="merge_dataset",
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _decode_outcome(item: "Mapping[str, Any]") -> "NextResultsResponse | ReproError":
        if item.get("ok"):
            return decode_next_results_response(item["result"])
        return decode_error(200, {"error": item["error"]})

    def _prepare(
        self,
        method: str,
        path: str,
        payload: "Mapping[str, Any] | None" = None,
        headers: "Mapping[str, str] | None" = None,
    ) -> urllib.request.Request:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        merged: "dict[str, str]" = {}
        if body is not None:
            merged["Content-Type"] = "application/json"
        if self.client_id is not None:
            merged["X-Client-Id"] = self.client_id
        deadline = current_deadline()
        if deadline is not None:
            # The wire carries the budget *remaining at send time* — each
            # retry attempt re-reads it, so the server always sees how much
            # the caller still has, not what it started with.
            merged[DEADLINE_HEADER] = f"{deadline.remaining_ms():.0f}"
        if headers:
            merged.update(headers)
        return urllib.request.Request(
            self.base_url + path, data=body, method=method, headers=merged
        )

    def _call(
        self, attempt: "Any", idempotent: bool, operation: str
    ) -> "Any":
        """Run one transport attempt under the retry policy, if any."""
        if self.retry_policy is None:
            return attempt()
        return self.retry_policy.call(
            attempt, idempotent=idempotent, host=self._host, operation=operation
        )

    def _request(
        self,
        method: str,
        path: str,
        payload: "Mapping[str, Any] | None" = None,
        headers: "Mapping[str, str] | None" = None,
        idempotent: bool = False,
        operation: str = "request",
    ) -> "dict[str, Any]":
        def attempt() -> "dict[str, Any]":
            request = self._prepare(method, path, payload, headers)
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise self._wire_error(exc) from exc
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TransportError(f"Server returned invalid JSON: {exc}") from exc

        return self._call(attempt, idempotent, operation)

    def _request_text(self, method: str, path: str) -> str:
        """A request whose response body is plain text (Prometheus format)."""
        request = self._prepare(method, path)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            raise self._wire_error(exc) from exc
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TransportError(f"Server returned invalid UTF-8: {exc}") from exc

    def _stream(self, path: str) -> "Iterator[dict[str, Any]]":
        """Yield decoded NDJSON records as the chunked response arrives."""
        request = self._prepare("GET", path, headers={"Accept": "application/x-ndjson"})
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                for raw_line in response:
                    line = raw_line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line.decode("utf-8"))
                    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                        raise TransportError(
                            f"Server sent an invalid NDJSON line: {exc}"
                        ) from exc
        except (OSError, http.client.HTTPException) as exc:
            raise self._wire_error(exc) from exc

    def _wire_error(self, exc: Exception) -> ReproError:
        """One mapping for everything the socket layer can raise.

        ``HTTPError`` carries a server envelope to decode; ``URLError``
        means the service was never reached; anything else (IncompleteRead,
        a connection reset mid-stream) is a connection that died partway —
        all surface as the typed errors the protocol promises, never raw
        ``http.client``/``OSError`` leakage.  Connection-level failures
        carry ``request_sent``: refused/unreachable connections never got
        the request out (always safe to retry), everything else may have —
        the retry policy and circuit breaker branch on exactly this.
        """
        if isinstance(exc, urllib.error.HTTPError):
            return self._error_from_response(exc.code, exc.read())
        if isinstance(exc, urllib.error.URLError):
            reason = exc.reason
            # Connect-phase failures (refused, no route, DNS) happen before
            # a byte of the request leaves; anything past that is ambiguous
            # and conservatively treated as sent.
            connect_phase = isinstance(
                reason, (ConnectionRefusedError, ConnectionResetError, socket.gaierror)
            ) and not isinstance(reason, TimeoutError)
            return ConnectionFailedError(
                f"Could not reach SeeSaw service at {self.base_url}: {reason}",
                request_sent=not connect_phase,
            )
        return ConnectionFailedError(
            f"Connection to SeeSaw service at {self.base_url} failed "
            f"mid-request: {exc!r}",
            request_sent=True,
        )

    @staticmethod
    def _error_from_response(status: int, raw: bytes) -> ReproError:
        """Map a `/v1` error envelope back to a library exception."""
        try:
            payload = json.loads(raw.decode("utf-8"))
        except Exception:
            return TransportError(f"Server returned HTTP {status}: {raw[:200]!r}")
        return decode_error(status, payload)


class ServiceClient:
    """A small blocking client over :mod:`urllib` — no third-party deps."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def healthz(self) -> "dict[str, Any]":
        """The server's health summary."""
        return self._request("GET", "/healthz")

    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        """Start a session; returns its summary (with the new session id)."""
        payload = self._request(
            "POST", "/sessions", encode_start_session_request(request)
        )
        return decode_session_info(payload)

    def next_results(
        self, session_id: str, count: "int | None" = None
    ) -> NextResultsResponse:
        """Fetch the next result batch for a session."""
        path = f"/sessions/{session_id}/next"
        if count is not None:
            path += f"?count={count}"
        return decode_next_results_response(self._request("GET", path))

    def batch_next(
        self, requests: "Sequence[tuple[str, int | None]]"
    ) -> "list[NextResultsResponse | ReproError]":
        """Fetch next batches for many sessions in one fused round trip.

        Outcomes align positionally with ``requests``; a failed session
        comes back as the typed exception instance (not raised) so callers
        can handle partial success, mirroring the server's envelope.
        """
        payload = {
            "requests": [
                {"session_id": session_id, **({} if count is None else {"count": count})}
                for session_id, count in requests
            ]
        }
        data = self._request("POST", "/sessions/batch-next", payload)
        outcomes: "list[NextResultsResponse | ReproError]" = []
        for item in data["results"]:
            if item.get("ok"):
                outcomes.append(decode_next_results_response(item["result"]))
            else:
                error = item["error"]
                exc_type = _ERROR_TYPES.get(str(error["type"]), SessionError)
                outcomes.append(exc_type(str(error["message"])))
        return outcomes

    def give_feedback(self, request: FeedbackRequest) -> SessionInfo:
        """Submit feedback for one image of the session's current batch."""
        payload = self._request(
            "POST",
            f"/sessions/{request.session_id}/feedback",
            encode_feedback_request(request),
        )
        return decode_session_info(payload)

    def session_info(self, session_id: str) -> SessionInfo:
        """Progress summary for one session."""
        return decode_session_info(self._request("GET", f"/sessions/{session_id}"))

    def close_session(self, session_id: str) -> None:
        """Close a session on the server."""
        self._request("DELETE", f"/sessions/{session_id}")

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: "Mapping[str, Any] | None" = None
    ) -> "dict[str, Any]":
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            raise self._error_from_response(exc.code, exc.read()) from exc
        except urllib.error.URLError as exc:
            raise TransportError(
                f"Could not reach SeeSaw service at {self.base_url}: {exc.reason}"
            ) from exc
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportError(f"Server returned invalid JSON: {exc}") from exc

    @staticmethod
    def _error_from_response(status: int, raw: bytes) -> ReproError:
        """Map the server's error envelope back to a library exception."""
        try:
            envelope = json.loads(raw.decode("utf-8"))
            error = envelope["error"]
            kind = str(error["type"])
            message = str(error["message"])
        except Exception:
            return TransportError(f"Server returned HTTP {status}: {raw[:200]!r}")
        exc_type = _ERROR_TYPES.get(kind, SessionError)
        return exc_type(message)
