"""Typed HTTP client for the SeeSaw service.

Mirrors the in-process :class:`~repro.server.service.SeeSawService` surface
over HTTP: the same request/response dataclasses go in and come out, and
server-side errors are re-raised as the exception types the in-process
service would have raised, so callers can switch between the two without
changing their error handling.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Mapping, Sequence

from repro.exceptions import (
    ReproError,
    ServiceOverloadedError,
    SessionError,
    TransportError,
    UnknownResourceError,
)
from repro.server.api import (
    FeedbackRequest,
    NextResultsResponse,
    SessionInfo,
    StartSessionRequest,
)
from repro.server.codec import (
    decode_next_results_response,
    decode_session_info,
    encode_feedback_request,
    encode_start_session_request,
)

_ERROR_TYPES: "dict[str, type[ReproError]]" = {
    "TransportError": TransportError,
    "UnknownResourceError": UnknownResourceError,
    "ServiceOverloadedError": ServiceOverloadedError,
    "SessionError": SessionError,
}


class ServiceClient:
    """A small blocking client over :mod:`urllib` — no third-party deps."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def healthz(self) -> "dict[str, Any]":
        """The server's health summary."""
        return self._request("GET", "/healthz")

    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        """Start a session; returns its summary (with the new session id)."""
        payload = self._request(
            "POST", "/sessions", encode_start_session_request(request)
        )
        return decode_session_info(payload)

    def next_results(
        self, session_id: str, count: "int | None" = None
    ) -> NextResultsResponse:
        """Fetch the next result batch for a session."""
        path = f"/sessions/{session_id}/next"
        if count is not None:
            path += f"?count={count}"
        return decode_next_results_response(self._request("GET", path))

    def batch_next(
        self, requests: "Sequence[tuple[str, int | None]]"
    ) -> "list[NextResultsResponse | ReproError]":
        """Fetch next batches for many sessions in one fused round trip.

        Outcomes align positionally with ``requests``; a failed session
        comes back as the typed exception instance (not raised) so callers
        can handle partial success, mirroring the server's envelope.
        """
        payload = {
            "requests": [
                {"session_id": session_id, **({} if count is None else {"count": count})}
                for session_id, count in requests
            ]
        }
        data = self._request("POST", "/sessions/batch-next", payload)
        outcomes: "list[NextResultsResponse | ReproError]" = []
        for item in data["results"]:
            if item.get("ok"):
                outcomes.append(decode_next_results_response(item["result"]))
            else:
                error = item["error"]
                exc_type = _ERROR_TYPES.get(str(error["type"]), SessionError)
                outcomes.append(exc_type(str(error["message"])))
        return outcomes

    def give_feedback(self, request: FeedbackRequest) -> SessionInfo:
        """Submit feedback for one image of the session's current batch."""
        payload = self._request(
            "POST",
            f"/sessions/{request.session_id}/feedback",
            encode_feedback_request(request),
        )
        return decode_session_info(payload)

    def session_info(self, session_id: str) -> SessionInfo:
        """Progress summary for one session."""
        return decode_session_info(self._request("GET", f"/sessions/{session_id}"))

    def close_session(self, session_id: str) -> None:
        """Close a session on the server."""
        self._request("DELETE", f"/sessions/{session_id}")

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: "Mapping[str, Any] | None" = None
    ) -> "dict[str, Any]":
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            raise self._error_from_response(exc.code, exc.read()) from exc
        except urllib.error.URLError as exc:
            raise TransportError(
                f"Could not reach SeeSaw service at {self.base_url}: {exc.reason}"
            ) from exc
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportError(f"Server returned invalid JSON: {exc}") from exc

    @staticmethod
    def _error_from_response(status: int, raw: bytes) -> ReproError:
        """Map the server's error envelope back to a library exception."""
        try:
            envelope = json.loads(raw.decode("utf-8"))
            error = envelope["error"]
            kind = str(error["type"])
            message = str(error["message"])
        except Exception:
            return TransportError(f"Server returned HTTP {status}: {raw[:200]!r}")
        exc_type = _ERROR_TYPES.get(kind, SessionError)
        return exc_type(message)
