"""SeeSawService: dataset registry and session lifecycle.

This is the in-process equivalent of the paper's server layer: it owns the
preprocessed indexes for any number of datasets and exposes a small API the
UI (or an example script, or a test) drives: start a session, fetch the next
batch, submit feedback.
"""

from __future__ import annotations

import itertools

from repro.config import MultiscaleConfig, SeeSawConfig
from repro.core.indexing import SeeSawIndex
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.core.session import SearchSession
from repro.data.dataset import ImageDataset
from repro.embedding.base import EmbeddingModel
from repro.exceptions import SessionError
from repro.server.api import (
    FeedbackRequest,
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    StartSessionRequest,
)


class SeeSawService:
    """Owns dataset indexes and live search sessions."""

    def __init__(self, config: "SeeSawConfig | None" = None) -> None:
        self.config = config or SeeSawConfig()
        self._indexes: dict[tuple[str, bool], SeeSawIndex] = {}
        self._datasets: dict[str, tuple[ImageDataset, EmbeddingModel]] = {}
        self._sessions: dict[str, SearchSession] = {}
        self._session_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # dataset registry
    # ------------------------------------------------------------------
    def register_dataset(
        self,
        dataset: ImageDataset,
        embedding: EmbeddingModel,
        preprocess: bool = True,
    ) -> None:
        """Register a dataset; optionally build its multiscale index eagerly."""
        self._datasets[dataset.name] = (dataset, embedding)
        if preprocess:
            self._index_for(dataset.name, multiscale=True)

    @property
    def dataset_names(self) -> "tuple[str, ...]":
        """Names of the registered datasets."""
        return tuple(self._datasets)

    def _index_for(self, dataset_name: str, multiscale: bool) -> SeeSawIndex:
        if dataset_name not in self._datasets:
            raise SessionError(f"Dataset '{dataset_name}' is not registered")
        key = (dataset_name, multiscale)
        if key not in self._indexes:
            dataset, embedding = self._datasets[dataset_name]
            config = self.config.with_overrides(
                multiscale=MultiscaleConfig(enabled=multiscale)
            )
            self._indexes[key] = SeeSawIndex.build(dataset, embedding, config)
        return self._indexes[key]

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        """Start a new interactive search session."""
        index = self._index_for(request.dataset, request.multiscale)
        session = SearchSession(
            index=index,
            method=SeeSawSearchMethod(self.config),
            text_query=request.text_query,
            batch_size=request.batch_size,
        )
        session_id = f"session-{next(self._session_counter)}"
        self._sessions[session_id] = session
        return self.session_info(session_id)

    def _session(self, session_id: str) -> SearchSession:
        try:
            return self._sessions[session_id]
        except KeyError as exc:
            raise SessionError(f"Unknown session '{session_id}'") from exc

    def next_results(self, session_id: str, count: "int | None" = None) -> NextResultsResponse:
        """Fetch the next batch of results for a session."""
        session = self._session(session_id)
        results = session.next_batch(count)
        items = [
            ResultItem.from_box(result.image_id, result.score, result.box)
            for result in results
        ]
        return NextResultsResponse(
            session_id=session_id,
            items=items,
            total_shown=len(session.history),
            positives_found=session.relevant_found,
        )

    def give_feedback(self, request: FeedbackRequest) -> SessionInfo:
        """Submit feedback for one image of the session's current batch."""
        session = self._session(request.session_id)
        boxes = tuple(box.to_bounding_box() for box in request.boxes)
        session.give_feedback(request.image_id, request.relevant, boxes)
        return self.session_info(request.session_id)

    def session_info(self, session_id: str) -> SessionInfo:
        """Progress summary for one session."""
        session = self._session(session_id)
        return SessionInfo(
            session_id=session_id,
            dataset=session.index.dataset.name,
            text_query=session.text_query,
            total_shown=len(session.history),
            positives_found=session.relevant_found,
            rounds=session.stats.rounds,
        )

    def close_session(self, session_id: str) -> None:
        """Forget a session."""
        self._sessions.pop(session_id, None)
