"""SeeSawService: dataset registry and session lifecycle.

This is the in-process equivalent of the paper's server layer: it owns the
preprocessed indexes for any number of datasets and exposes a small API the
UI (or an example script, or a test) drives: start a session, fetch the next
batch, submit feedback.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Sequence

import numpy as np

from repro import obs
from repro.config import MultiscaleConfig, SeeSawConfig
from repro.core.indexing import SeeSawIndex
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.core.session import SearchSession, SessionStats
from repro.data.dataset import ImageDataset
from repro.embedding.base import EmbeddingModel
from repro.exceptions import ReproError, SessionError, UnknownResourceError
from repro.live.delta import DeltaVectorStore
from repro.live.registry import DatasetRegistry
from repro.server.api import (
    FeedbackRequest,
    NextResultsResponse,
    ResultItem,
    SessionInfo,
    StartSessionRequest,
)
from repro.store.cache import IndexCache
from repro.vectorstore.graph import GraphANNVectorStore
from repro.vectorstore.quantized import QuantizedVectorStore
from repro.vectorstore.sharded import ShardedVectorStore


class SeeSawService:
    """Owns dataset indexes and live search sessions."""

    def __init__(
        self,
        config: "SeeSawConfig | None" = None,
        registry: "obs.MetricsRegistry | None" = None,
    ) -> None:
        self.config = config or SeeSawConfig()
        self._indexes: dict[tuple[str, bool], SeeSawIndex] = {}
        self._datasets: dict[str, tuple[ImageDataset, EmbeddingModel]] = {}
        self._caches: dict[str, IndexCache] = {}
        self._sessions: dict[str, SearchSession] = {}
        self._session_counter = itertools.count(1)
        self.cache_hits = 0
        self.cache_misses = 0
        self._overload_degraded = False
        # Builds for *different* datasets can run concurrently under the
        # SessionManager's per-dataset locks, so the shared counters need
        # their own guard.
        self._counter_lock = threading.Lock()
        # The metrics sink every layer below this service records into.
        # Defaults to the process-global registry; tests inject private
        # instances for isolation.  Constructing a service also (re)points
        # the tracing runtime at this registry and applies the telemetry
        # master switch — the service is the stack's composition root.
        self.metrics = registry if registry is not None else obs.get_registry()
        obs.configure(
            enabled=self.config.telemetry.enabled,
            registry=registry,
        )
        telemetry = self.config.telemetry
        if registry is not None:
            self.metrics.max_series_per_metric = telemetry.max_series_per_metric
        self._fused_rounds = self.metrics.counter(
            "seesaw_fused_rounds_total",
            "Fused batch-next dispatches (one GEMM per index group).",
        )
        self._fused_sessions = self.metrics.counter(
            "seesaw_fused_sessions_total",
            "Sessions served through fused batch-next dispatches.",
        )
        self._fused_batch_seconds = self.metrics.histogram(
            "seesaw_fused_batch_seconds",
            "Wall-clock duration of one fused batch-next GEMM dispatch.",
        )
        self._cache_events = self.metrics.counter(
            "seesaw_index_cache_total",
            "Index-cache lookups at dataset registration, by outcome.",
            labels=("outcome",),
        )
        self.metrics.gauge(
            "seesaw_active_sessions",
            "Live interactive sessions owned by this service.",
            callback=lambda: float(len(self._sessions)),
        )
        # The mutable-dataset control plane: versions, manifests, delta
        # state, and the background merger (always constructed — mutations
        # themselves are gated on ``config.live_datasets``).
        self.live = DatasetRegistry(self)

    # ------------------------------------------------------------------
    # deprecation shims (pre-obs bespoke counters; /healthz still reads them)
    # ------------------------------------------------------------------
    @property
    def fused_rounds(self) -> int:
        """Deprecated: read ``seesaw_fused_rounds_total`` from the registry."""
        return int(self._fused_rounds.value)

    @property
    def fused_sessions(self) -> int:
        """Deprecated: read ``seesaw_fused_sessions_total`` from the registry."""
        return int(self._fused_sessions.value)

    # ------------------------------------------------------------------
    # dataset registry
    # ------------------------------------------------------------------
    def register_dataset(
        self,
        dataset: ImageDataset,
        embedding: EmbeddingModel,
        preprocess: bool = True,
        cache_dir: "str | os.PathLike[str] | None" = None,
    ) -> None:
        """Register a dataset; optionally build its multiscale index eagerly.

        When ``cache_dir`` (or ``config.index_cache_dir``) is set, index
        builds go through an on-disk :class:`~repro.store.IndexCache`: a
        warm entry is loaded instead of re-embedding the dataset, and fresh
        builds are persisted for the next process start.
        """
        self._datasets[dataset.name] = (dataset, embedding)
        # Re-registering a name must invalidate any index built from the
        # previous dataset/embedding, or sessions would silently search it.
        for key in [k for k in self._indexes if k[0] == dataset.name]:
            del self._indexes[key]
        effective_cache_dir = cache_dir or self.config.index_cache_dir
        if effective_cache_dir is not None:
            self._caches[dataset.name] = IndexCache(
                effective_cache_dir, mmap=self.config.mmap_index
            )
        else:
            self._caches.pop(dataset.name, None)
        # Publish version 1 (re-registering resets the version lineage).
        self.live.publish(dataset)
        if preprocess:
            self.index_for(dataset.name, multiscale=True)
            # Adopt the freshly built index as the live tier's sealed base so
            # version-1 pins and the manifest's cache key are ready now.
            self.live.warm(dataset.name)

    @property
    def dataset_names(self) -> "tuple[str, ...]":
        """Names of the registered datasets."""
        return tuple(self._datasets)

    def has_index(self, dataset_name: str, multiscale: bool = True) -> bool:
        """True when the index for ``dataset_name`` is already in memory."""
        return (dataset_name, multiscale) in self._indexes

    def index_for(self, dataset_name: str, multiscale: bool = True) -> SeeSawIndex:
        """The (lazily built, possibly cache-loaded) index for one dataset."""
        if dataset_name not in self._datasets:
            raise UnknownResourceError(f"Dataset '{dataset_name}' is not registered")
        key = (dataset_name, multiscale)
        if key not in self._indexes:
            dataset, embedding = self._datasets[dataset_name]
            config = self.config.with_overrides(
                multiscale=MultiscaleConfig(enabled=multiscale)
            )
            cache = self._caches.get(dataset_name)
            if cache is not None:
                index, was_cached = cache.load_or_build(dataset, embedding, config)
                with self._counter_lock:
                    if was_cached:
                        self.cache_hits += 1
                    else:
                        self.cache_misses += 1
                self._cache_events.labels("hit" if was_cached else "miss").inc()
            else:
                index = SeeSawIndex.build(dataset, embedding, config)
            # Quantization and shard topology are runtime tiers (excluded
            # from the cache key): a cache-loaded index comes back flat and
            # is tiered here, once, before any session touches it.
            self._apply_store_tiers(index)
            # Warm the columnar query engine now (segment offsets, id
            # columns): it is cached on the index, so every session on this
            # dataset shares one engine instead of paying a first-round
            # build under a request.
            index.engine
            self._indexes[key] = index
        return self._indexes[key]

    def _apply_store_tiers(self, index: SeeSawIndex) -> None:
        """Apply the configured runtime tiers to the index's store (idempotent).

        Graph ANN first (it consumes the flat exhaustive store, adopting its
        vectors zero-copy, and an ANN-tiered index is no longer exhaustive so
        quantization naturally skips it), then quantization, then sharding —
        a sharded graph store builds one navigable graph per shard, and a
        sharded quantized store quantizes per shard, which per-row symmetric
        scales make bit-identical to slicing the flat quantization.
        """
        if (
            self.config.ann_search
            and index.store.exhaustive
            and not isinstance(index.store, (GraphANNVectorStore, ShardedVectorStore))
        ):
            index.replace_store(
                GraphANNVectorStore(
                    index.store.vectors,
                    list(index.store.records),
                    graph_degree=self.config.ann_graph_degree,
                    ef=self.config.ann_ef,
                    seed=self.config.seed,
                )
            )
        if (
            self.config.quantized_store
            and index.store.exhaustive
            and not isinstance(index.store, (QuantizedVectorStore, ShardedVectorStore))
        ):
            index.replace_store(
                QuantizedVectorStore(
                    index.store.vectors,
                    list(index.store.records),
                    rerank_factor=self.config.quantized_rerank_factor,
                )
            )
        if self.config.n_shards > 1 and not isinstance(index.store, ShardedVectorStore):
            index.replace_store(
                ShardedVectorStore.wrap(index.store, self.config.n_shards)
            )
        # An index built while the service is already overloaded starts at
        # the degraded beam, not the configured one.
        if self._overload_degraded:
            self._set_graph_ef(index, self._degraded_ef())

    # ------------------------------------------------------------------
    # graceful degradation under overload
    # ------------------------------------------------------------------
    def set_overload_degraded(self, degraded: bool) -> None:
        """Trade graph-ANN recall for latency while the service is overloaded.

        The admission tracker fires this on overload *transitions* (shedding
        began / in-flight drained back down).  Degradation lowers every
        graph store's beam width (``ef``) to the configured
        ``overload_ef_floor`` — each admitted query then walks a shorter
        descent, which drains the backlog faster; recovery restores the
        configured ``ann_ef``.  The write is one int attribute per graph
        store, read per search, so flipping costs nothing on the hot path.
        Exhaustive and quantized tiers have no quality knob to turn and are
        left alone.
        """
        degraded = bool(degraded)
        if degraded == self._overload_degraded:
            return
        self._overload_degraded = degraded
        target_ef = self._degraded_ef() if degraded else self.config.ann_ef
        for index in self._indexes.values():
            self._set_graph_ef(index, target_ef)
        self.metrics.gauge(
            "seesaw_overload_degraded",
            "1 while overload has the graph-ANN beam lowered to the floor.",
        ).set(1.0 if degraded else 0.0)

    @property
    def overload_degraded(self) -> bool:
        return self._overload_degraded

    def _degraded_ef(self) -> int:
        return min(self.config.ann_ef, self.config.overload_ef_floor)

    @staticmethod
    def _set_graph_ef(index: SeeSawIndex, ef: int) -> None:
        store = index.store
        stores = (
            store.shard_stores if isinstance(store, ShardedVectorStore) else (store,)
        )
        for inner in stores:
            if isinstance(inner, GraphANNVectorStore):
                inner.ef = int(ef)

    @property
    def cached_engine_count(self) -> int:
        """Number of in-memory indexes with a warmed query engine."""
        return sum(1 for index in self._indexes.values() if index.engine_warmed)

    @property
    def store_shard_counts(self) -> "dict[str, int]":
        """Effective shard count per in-memory index (``/healthz`` detail).

        A projection of :attr:`store_tiers` — the label convention and
        topology introspection live there, once.
        """
        return {
            label: int(tier["shards"]) for label, tier in self.store_tiers.items()
        }

    @property
    def store_tiers(self) -> "dict[str, dict[str, object]]":
        """Storage/compute tier summary per in-memory index (``/healthz``).

        One entry per index: the scoring dtype, whether the int8 candidate
        tier is active (and its re-rank factor), whether the graph-ANN tier
        is active (and its degree/``ef``), and the shard count — the full
        tier stack a request to that dataset scores through.
        """
        tiers: "dict[str, dict[str, object]]" = {}
        for (dataset_name, multiscale), index in self._indexes.items():
            label = dataset_name if multiscale else f"{dataset_name}-coarse"
            store = index.store
            live = isinstance(store, DeltaVectorStore)
            sealed = store.base if live else store
            flat = (
                sealed.shard_example
                if isinstance(sealed, ShardedVectorStore)
                else sealed
            )
            quantized = isinstance(flat, QuantizedVectorStore)
            graph = isinstance(flat, GraphANNVectorStore)
            tiers[label] = {
                "compute_dtype": store.compute_dtype.name,
                "quantized": quantized,
                "rerank_factor": flat.rerank_factor if quantized else None,
                "graph": graph,
                "ann_graph_degree": flat.graph_degree if graph else None,
                "ann_ef": flat.ef if graph else None,
                "shards": (
                    sealed.n_shards if isinstance(sealed, ShardedVectorStore) else 1
                ),
                "live": live,
                "delta_rows": store.delta_rows if live else 0,
            }
        return tiers

    # ------------------------------------------------------------------
    # session lifecycle
    # ------------------------------------------------------------------
    def validate_start_request(self, request: StartSessionRequest) -> None:
        """Reject malformed start requests before any expensive work runs."""
        if request.batch_size < 1:
            raise SessionError(
                f"batch_size must be >= 1, got {request.batch_size}"
            )
        if not request.text_query or not request.text_query.strip():
            raise SessionError("text_query must be a non-empty string")
        if request.dataset not in self._datasets:
            raise UnknownResourceError(
                f"Dataset '{request.dataset}' is not registered"
            )
        if request.dataset_version is not None:
            if request.dataset_version < 1:
                raise SessionError(
                    f"dataset_version must be >= 1, got {request.dataset_version}"
                )
            if not request.multiscale:
                raise SessionError(
                    "dataset_version pinning requires the multiscale index"
                )

    def start_session(self, request: StartSessionRequest) -> SessionInfo:
        """Start a new interactive search session."""
        self.validate_start_request(request)
        if request.dataset_version is not None:
            index = self.live.index_for_version(
                request.dataset, request.dataset_version
            )
        else:
            index = self.index_for(request.dataset, request.multiscale)
        session = SearchSession(
            index=index,
            method=SeeSawSearchMethod(self.config),
            text_query=request.text_query,
            batch_size=request.batch_size,
        )
        session_id = f"session-{next(self._session_counter)}"
        self._sessions[session_id] = session
        return self.session_info(session_id)

    @property
    def session_ids(self) -> "tuple[str, ...]":
        """Ids of the live sessions."""
        return tuple(self._sessions)

    def _session(self, session_id: str) -> SearchSession:
        try:
            return self._sessions[session_id]
        except KeyError as exc:
            raise UnknownResourceError(f"Unknown session '{session_id}'") from exc

    def next_results(self, session_id: str, count: "int | None" = None) -> NextResultsResponse:
        """Fetch the next batch of results for a session."""
        session = self._session(session_id)
        return self._next_response(session_id, session, session.next_batch(count))

    @staticmethod
    def _next_response(
        session_id: str, session: SearchSession, results: "list[object]"
    ) -> NextResultsResponse:
        items = [
            ResultItem.from_box(result.image_id, result.score, result.box)
            for result in results
        ]
        return NextResultsResponse(
            session_id=session_id,
            items=items,
            total_shown=len(session.history),
            positives_found=session.relevant_found,
        )

    def batch_next(
        self, requests: "Sequence[tuple[str, int | None]]"
    ) -> "list[NextResultsResponse | ReproError]":
        """Fetch the next batch for many sessions, fusing rounds where possible.

        Sessions whose method opted into fused scoring
        (:attr:`~repro.core.interfaces.SearchMethod.supports_fused_batch`)
        are grouped per index and dispatched through the cached
        :class:`~repro.engine.batch.BatchQueryEngine` — one GEMM per group.
        Everything else (opted-out methods, candidate stores, a second
        request for a session already served in this batch) runs through the
        ordinary sequential path.  The result list is positionally aligned
        with ``requests``; per-session failures come back as the exception
        the sequential call would have raised, so transports can map each to
        its own status code without failing the cohort.

        Not thread-safe on its own — callers (the
        :class:`~repro.server.manager.SessionManager`) must hold the session
        locks of every request in the batch.
        """
        outcomes: "list[NextResultsResponse | ReproError | None]" = [None] * len(requests)
        # (position, session, query_vector, count, mask) per fusable request,
        # grouped by the index the session searches.
        fused_groups: "dict[int, list[tuple[int, str, SearchSession, np.ndarray, int, object]]]" = {}
        sequential: "list[int]" = []
        claimed: "set[str]" = set()
        for position, (session_id, count) in enumerate(requests):
            if session_id in claimed:
                # A duplicate in one cohort must observe the first request's
                # pending batch, exactly as back-to-back sequential calls
                # would; deferring it to the sequential pass after dispatch
                # preserves that ordering.
                sequential.append(position)
                continue
            try:
                session = self._session(session_id)
                state = session.fused_batch_state(count)
            except ReproError as exc:
                outcomes[position] = exc
                continue
            claimed.add(session_id)
            if state is None:
                sequential.append(position)
                continue
            query_vector, effective_count, mask = state
            fused_groups.setdefault(id(session.index), []).append(
                (position, session_id, session, query_vector, effective_count, mask)
            )
        for group in fused_groups.values():
            # One perf_counter pair per dispatch: the same measurement feeds
            # each session's SessionStats credit (per-session share) and the
            # obs dispatch histogram (whole-GEMM wall clock).
            start = time.perf_counter()
            engine = group[0][2].index.batch_engine
            triples = engine.top_unseen_batch(
                np.stack([entry[3] for entry in group]),
                [entry[4] for entry in group],
                [entry[5] for entry in group],
            )
            dispatch_seconds = time.perf_counter() - start
            per_session_seconds = dispatch_seconds / len(group)
            self._fused_batch_seconds.observe(dispatch_seconds)
            self._fused_rounds.inc()
            self._fused_sessions.inc(len(group))
            for (position, session_id, session, _, _, _), (ids, scores, vector_ids) in zip(
                group, triples
            ):
                try:
                    results = session.context.results_from_arrays(ids, scores, vector_ids)
                    session.apply_batch_results(results, per_session_seconds)
                    outcomes[position] = self._next_response(session_id, session, results)
                except ReproError as exc:
                    outcomes[position] = exc
        for position in sequential:
            session_id, count = requests[position]
            try:
                outcomes[position] = self.next_results(session_id, count)
            except ReproError as exc:
                outcomes[position] = exc
        return outcomes  # type: ignore[return-value]

    def give_feedback(self, request: FeedbackRequest) -> SessionInfo:
        """Submit feedback for one image of the session's current batch."""
        session = self._session(request.session_id)
        boxes = tuple(box.to_bounding_box() for box in request.boxes)
        session.give_feedback(request.image_id, request.relevant, boxes)
        return self.session_info(request.session_id)

    def session_info(self, session_id: str) -> SessionInfo:
        """Progress summary for one session."""
        session = self._session(session_id)
        return SessionInfo(
            session_id=session_id,
            dataset=session.index.dataset.name,
            text_query=session.text_query,
            total_shown=len(session.history),
            positives_found=session.relevant_found,
            rounds=session.stats.rounds,
        )

    def session_stats(self, session_id: str) -> "SessionStats":
        """Latency accounting for one session (``GET /v1/sessions`` telemetry)."""
        return self._session(session_id).stats

    def close_session(self, session_id: str) -> None:
        """Forget a session."""
        self._sessions.pop(session_id, None)
