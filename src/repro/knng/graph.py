"""kNN graph with the matrices DB alignment and label propagation need.

The graph stores, for every vector, its ``k`` nearest neighbours and the
Gaussian edge weight between them.  From those it derives the (symmetrised)
sparse adjacency matrix ``W``, the diagonal degree matrix ``D``, and the graph
Laplacian ``D - W`` used in Equation 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.config import KnnGraphConfig
from repro.exceptions import IndexingError
from repro.knng.kernels import gaussian_similarity, squared_distance_from_inner
from repro.knng.nndescent import exact_knn, nn_descent
from repro.utils.linalg import ensure_dtype, unit_rows


@dataclass
class KnnGraph:
    """A weighted, symmetrised k-nearest-neighbour graph.

    The derived matrices (adjacency, row-normalized transition) are cached
    after first use: the propagation baseline asks for the transition matrix
    on every feedback round, and rebuilding ``D^{-1} W`` from the neighbour
    arrays each time dominated its per-round cost.
    """

    neighbor_ids: np.ndarray
    neighbor_weights: np.ndarray
    sigma: float

    def __post_init__(self) -> None:
        if self.neighbor_ids.shape != self.neighbor_weights.shape:
            raise IndexingError("neighbor ids and weights must have the same shape")
        if self.neighbor_ids.ndim != 2:
            raise IndexingError("neighbor arrays must be 2-d (count x k)")
        self._adjacency: "sparse.csr_matrix | None" = None
        self._transition: "sparse.csr_matrix | None" = None

    @property
    def node_count(self) -> int:
        """Number of nodes (database vectors) in the graph."""
        return self.neighbor_ids.shape[0]

    @property
    def k(self) -> int:
        """Number of neighbours stored per node."""
        return self.neighbor_ids.shape[1]

    def adjacency(self) -> sparse.csr_matrix:
        """The symmetrised sparse adjacency matrix ``W`` (cached).

        Symmetrisation takes the maximum of the two directed edge weights so
        the Laplacian is positive semi-definite, the standard construction for
        label propagation.
        """
        if self._adjacency is None:
            count, k = self.neighbor_ids.shape
            rows = np.repeat(np.arange(count), k)
            cols = self.neighbor_ids.ravel()
            data = self.neighbor_weights.ravel()
            directed = sparse.csr_matrix((data, (rows, cols)), shape=(count, count))
            self._adjacency = directed.maximum(directed.T)
        return self._adjacency

    def transition(self) -> sparse.csr_matrix:
        """The row-normalized transition matrix ``D^{-1} W`` (cached).

        This is the operator one label-propagation sweep applies; isolated
        nodes (zero degree) keep a zero row, implemented by treating their
        degree as 1.  Computed once per graph and reused by every
        ``propagate_labels`` call — i.e. every feedback round of the
        propagation baseline.
        """
        if self._transition is None:
            adjacency = self.adjacency()
            degrees = np.asarray(adjacency.sum(axis=1)).ravel()
            degrees[degrees == 0.0] = 1.0
            self._transition = sparse.diags(1.0 / degrees) @ adjacency
        return self._transition

    def degree(self, adjacency: "sparse.csr_matrix | None" = None) -> sparse.csr_matrix:
        """The diagonal degree matrix ``D`` (row sums of ``W``)."""
        if adjacency is None:
            adjacency = self.adjacency()
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        return sparse.diags(degrees, format="csr")

    def laplacian(self) -> sparse.csr_matrix:
        """The unnormalised graph Laplacian ``D - W`` of Equation 4."""
        adjacency = self.adjacency()
        return (self.degree(adjacency) - adjacency).tocsr()

    def neighbors_of(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """Neighbour ids and weights of one node."""
        if not 0 <= node < self.node_count:
            raise IndexingError(f"Unknown node {node}")
        return self.neighbor_ids[node].copy(), self.neighbor_weights[node].copy()


def build_knn_graph(
    vectors: np.ndarray,
    config: "KnnGraphConfig | None" = None,
    seed: int = 0,
) -> KnnGraph:
    """Build a :class:`KnnGraph` over ``vectors`` following ``config``.

    The exact chunked builder is the default; NN-descent is used when the
    configuration asks for it (matching the paper's choice for large data).
    """
    config = config or KnnGraphConfig()
    # Graph weights are always computed in float64 (edge weights feed the
    # Laplacian; a float32 store's rounding shouldn't reach the propagation
    # math), but a store's already-unit float64 rows flow through zero-copy:
    # ensure_dtype skips the conversion and unit_rows skips the re-divide
    # that used to copy the whole matrix per build.
    vectors = unit_rows(ensure_dtype(vectors, np.float64))
    if config.use_nn_descent:
        neighbor_ids, neighbor_sims = nn_descent(
            vectors,
            k=config.k,
            iterations=config.nn_descent_iterations,
            sample_rate=config.nn_descent_sample_rate,
            seed=seed,
        )
    else:
        neighbor_ids, neighbor_sims = exact_knn(vectors, k=config.k)
    squared = squared_distance_from_inner(neighbor_sims)
    sigma = config.sigma
    if config.adaptive_sigma:
        # The paper's sigma is tuned to CLIP's geometry; the adaptive floor
        # keeps the kernel informative for spaces with larger neighbour gaps.
        median_distance = float(np.median(np.sqrt(squared)))
        sigma = max(sigma, median_distance)
    weights = gaussian_similarity(squared, sigma=sigma)
    return KnnGraph(neighbor_ids=neighbor_ids, neighbor_weights=weights, sigma=sigma)
