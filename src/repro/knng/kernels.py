"""Similarity kernels for kNN-graph edge weights.

The paper (§4.2) weights graph edges with a Gaussian kernel on the Euclidean
distance between embedding vectors: ``w_ij = exp(-(x_i - x_j)^2 / (2 sigma^2))``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError


def gaussian_similarity(
    squared_distances: np.ndarray, sigma: float = 0.05
) -> np.ndarray:
    """Gaussian kernel on squared Euclidean distances."""
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be > 0, got {sigma}")
    squared_distances = np.asarray(squared_distances, dtype=np.float64)
    return np.exp(-squared_distances / (2.0 * sigma * sigma))


def squared_distance_from_inner(inner_products: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance between unit vectors from inner products.

    For unit vectors ``|x - y|^2 = 2 - 2 x.y``; clipping guards against tiny
    negative values introduced by floating-point error.
    """
    inner_products = np.asarray(inner_products, dtype=np.float64)
    return np.clip(2.0 - 2.0 * inner_products, 0.0, None)
