"""NN-descent: approximate kNN-graph construction (Dong et al., WWW 2011).

The paper builds its kNN graph with NN-descent because exact construction is
quadratic in the database size.  This is a from-scratch implementation over
cosine similarity (equivalently inner product of unit vectors): start from a
random neighbour assignment and repeatedly propose neighbours-of-neighbours
(in both edge directions), keeping the best ``k`` per node, until the graph
stops improving.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import IndexingError
from repro.utils.linalg import ensure_dtype, unit_rows
from repro.utils.rng import ensure_rng


def _top_k_merge(
    current_ids: np.ndarray,
    current_sims: np.ndarray,
    candidate_ids: np.ndarray,
    candidate_sims: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Merge candidate neighbours into the current top-k list for one node."""
    merged_ids = np.concatenate([current_ids, candidate_ids])
    merged_sims = np.concatenate([current_sims, candidate_sims])
    # Group duplicates by (id asc, sim desc): the first row of each id group
    # is its best similarity, so one boolean diff deduplicates without the
    # extra argsort + np.unique round-trip.
    order = np.lexsort((-merged_sims, merged_ids))
    merged_ids = merged_ids[order]
    merged_sims = merged_sims[order]
    first = np.ones(merged_ids.size, dtype=bool)
    first[1:] = merged_ids[1:] != merged_ids[:-1]
    merged_ids = merged_ids[first]
    merged_sims = merged_sims[first]
    # Top-k by similarity, ties broken by ascending id so the merge is
    # deterministic regardless of candidate arrival order.
    top = np.lexsort((merged_ids, -merged_sims))[:k]
    new_ids = merged_ids[top]
    new_sims = merged_sims[top]
    changed = not (
        new_ids.shape == current_ids.shape and np.array_equal(new_ids, current_ids)
    )
    return new_ids, new_sims, changed


def nn_descent(
    vectors: np.ndarray,
    k: int,
    iterations: int = 8,
    sample_rate: float = 1.0,
    seed: "int | np.random.Generator | None" = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Build an approximate kNN graph.

    Parameters
    ----------
    vectors:
        ``(count, dim)`` array; rows are normalised internally.
    k:
        Number of neighbours per node (excluding the node itself).
    iterations:
        Maximum number of local-join rounds.
    sample_rate:
        Fraction of each node's neighbour list proposed per round (``rho`` in
        the original paper); lower values trade accuracy for speed.
    seed:
        Seed for the random initial graph and sampling.

    Returns
    -------
    (neighbor_ids, neighbor_similarities):
        Two ``(count, k)`` arrays; similarities are inner products of the
        normalised vectors, sorted descending per row.
    """
    # Already-normalised float64 input (the build_knn_graph call path) passes
    # through zero-copy instead of paying a fresh divide-and-copy per call.
    vectors = unit_rows(ensure_dtype(vectors, np.float64))
    count = vectors.shape[0]
    if count < 2:
        raise IndexingError("nn_descent requires at least two vectors")
    k = min(k, count - 1)
    if k < 1:
        raise IndexingError("k must be >= 1")
    if not 0 < sample_rate <= 1:
        raise IndexingError("sample_rate must be in (0, 1]")
    rng = ensure_rng(seed)

    neighbor_ids = np.empty((count, k), dtype=np.int64)
    neighbor_sims = np.empty((count, k), dtype=np.float64)
    for node in range(count):
        choices = rng.choice(count - 1, size=k, replace=False)
        choices = np.where(choices >= node, choices + 1, choices)
        sims = vectors[choices] @ vectors[node]
        order = np.argsort(-sims)
        neighbor_ids[node] = choices[order]
        neighbor_sims[node] = sims[order]

    for _ in range(iterations):
        # Reverse adjacency (who currently lists each node as a neighbour),
        # built as a CSR bucketing instead of a Python list-of-lists: the
        # flattened edge targets are stably sorted once, and each node's
        # reverse neighbours become one contiguous slice of edge sources.
        edge_sources = np.repeat(np.arange(count, dtype=np.int64), k)
        edge_targets = neighbor_ids.ravel()
        by_target = np.argsort(edge_targets, kind="stable")
        reverse_sources = edge_sources[by_target]
        reverse_offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(np.bincount(edge_targets, minlength=count), out=reverse_offsets[1:])
        updates = 0
        for node in range(count):
            forward = neighbor_ids[node]
            if sample_rate < 1.0:
                sample_size = max(1, int(round(sample_rate * forward.size)))
                forward = rng.choice(forward, size=sample_size, replace=False)
            # Local join, batched: forward neighbours' own lists come out of
            # one fancy-indexed gather, reverse neighbours are contiguous CSR
            # slices, and one np.unique replaces the per-element Python set.
            # Current neighbours are *not* filtered out — the top-k merge
            # deduplicates by id keeping the best similarity, so re-proposing
            # them is harmless and cheaper than an isin() pass.
            parts = [
                neighbor_ids[forward].ravel(),
                reverse_sources[reverse_offsets[node] : reverse_offsets[node + 1]],
            ]
            parts.extend(
                reverse_sources[reverse_offsets[nb] : reverse_offsets[nb + 1]]
                for nb in forward
            )
            pool = np.unique(np.concatenate(parts))
            candidates = pool[pool != node]
            if candidates.size == 0:
                continue
            sims = vectors[candidates] @ vectors[node]
            new_ids, new_sims, changed = _top_k_merge(
                neighbor_ids[node], neighbor_sims[node], candidates, sims, k
            )
            if changed:
                neighbor_ids[node] = new_ids
                neighbor_sims[node] = new_sims
                updates += 1
        if updates == 0:
            break
    return neighbor_ids, neighbor_sims


def exact_knn(
    vectors: np.ndarray, k: int, chunk_size: int = 1024
) -> tuple[np.ndarray, np.ndarray]:
    """Exact kNN graph via a chunked brute-force scan.

    Memory-bounded: similarity is computed for ``chunk_size`` rows at a time,
    so databases with tens of thousands of vectors never materialise the full
    pairwise matrix.
    """
    vectors = unit_rows(ensure_dtype(vectors, np.float64))
    count = vectors.shape[0]
    if count < 2:
        raise IndexingError("exact_knn requires at least two vectors")
    k = min(k, count - 1)
    neighbor_ids = np.empty((count, k), dtype=np.int64)
    neighbor_sims = np.empty((count, k), dtype=np.float64)
    # One similarity buffer reused across chunks: `@` would allocate a fresh
    # (chunk x count) product every iteration, doubling the scan's peak
    # memory and churning the allocator on large corpora.
    buffer = np.empty((min(chunk_size, count), count), dtype=np.float64)
    for start in range(0, count, chunk_size):
        stop = min(count, start + chunk_size)
        sims = np.dot(vectors[start:stop], vectors.T, out=buffer[: stop - start])
        rows = np.arange(start, stop)
        sims[np.arange(stop - start), rows] = -np.inf  # exclude self-edges
        top = np.argpartition(-sims, k - 1, axis=1)[:, :k]
        top_sims = np.take_along_axis(sims, top, axis=1)
        order = np.argsort(-top_sims, axis=1)
        neighbor_ids[start:stop] = np.take_along_axis(top, order, axis=1)
        neighbor_sims[start:stop] = np.take_along_axis(top_sims, order, axis=1)
    return neighbor_ids, neighbor_sims
