"""k-nearest-neighbour graph substrate.

DB alignment (§4.2), label propagation, and the ENS baseline all operate on a
kNN graph of the database vectors.  This package provides an exact (chunked
brute-force) builder, a from-scratch NN-descent approximate builder, and the
Gaussian similarity kernel the paper uses for edge weights.
"""

from repro.knng.graph import KnnGraph, build_knn_graph
from repro.knng.kernels import gaussian_similarity
from repro.knng.nndescent import nn_descent

__all__ = ["KnnGraph", "build_knn_graph", "gaussian_similarity", "nn_descent"]
