"""Dataset preprocessing: the SeeSaw index (Figure 3, top half).

Preprocessing embeds every image (or every multiscale patch of every image),
builds the vector store used for max-inner-product lookups, builds the kNN
graph over the stored vectors, and precomputes the DB-alignment matrix
``M_D``.  All of this happens once per dataset and is reused by every query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.config import SeeSawConfig
from repro.core.multiscale import generate_patches
from repro.core.propagation import compute_db_alignment_matrix
from repro.data.dataset import ImageDataset
from repro.embedding.base import EmbeddingModel
from repro.engine import BatchQueryEngine, ImageSegments, QueryEngine
from repro.exceptions import IndexingError
from repro.knng.graph import KnnGraph, build_knn_graph
from repro.utils.linalg import ensure_dtype, resolve_compute_dtype
from repro.vectorstore.base import VectorRecord, VectorStore
from repro.vectorstore.exact import ExactVectorStore
from repro.vectorstore.forest import RandomProjectionForest
from repro.vectorstore.graph import GraphANNVectorStore
from repro.vectorstore.quantized import QuantizedVectorStore


@dataclass
class IndexBuildReport:
    """Timing and size information about a preprocessing run (§2.4)."""

    dataset_name: str
    image_count: int
    vector_count: int
    embedding_seconds: float
    store_seconds: float
    graph_seconds: float
    multiscale: bool

    @property
    def vectors_per_image(self) -> float:
        """Average number of stored vectors per image."""
        return self.vector_count / max(1, self.image_count)


class SeeSawIndex:
    """The preprocessed artifacts SeeSaw needs to search one dataset."""

    def __init__(
        self,
        dataset: ImageDataset,
        embedding: EmbeddingModel,
        store: VectorStore,
        image_vector_ids: "dict[int, tuple[int, ...]]",
        knn_graph: "KnnGraph | None",
        db_matrix: "np.ndarray | None",
        config: SeeSawConfig,
        build_report: IndexBuildReport,
    ) -> None:
        self.dataset = dataset
        self.embedding = embedding
        self.store = store
        # The CSR segment layout is the source of truth for the
        # vector <-> image mapping; the legacy dict interface survives as
        # adapters (``vector_ids_for_image`` and friends) over it.
        self.segments = ImageSegments.from_mapping(image_vector_ids, len(store))
        self.knn_graph = knn_graph
        self.db_matrix = db_matrix
        self.config = config
        self.build_report = build_report
        self._image_ids: "tuple[int, ...] | None" = None
        self._engine: "QueryEngine | None" = None
        self._batch_engine: "BatchQueryEngine | None" = None
        self._validate_coarse_first()

    def _validate_coarse_first(self) -> None:
        """Assert that each image's first stored vector is its coarse patch.

        ``coarse_vector_ids()`` (and through it calibration and the
        coarse-score experiments) reads the first vector id of every segment
        as the whole-image patch.  The build loop guarantees this because
        ``generate_patches`` emits the coarse box first; indexes assembled
        any other way must uphold the same invariant, so it is checked here
        instead of being silently assumed.  One vectorized comparison over
        the store's scale-level column, so cache warm-starts stay cheap.
        """
        firsts = self.segments.first_vector_ids()
        offending = firsts[self.store.scale_levels[firsts] != 0]
        if offending.size:
            vector_id = int(offending[0])
            record = self.store.record(vector_id)
            raise IndexingError(
                f"Image {record.image_id}: first stored vector {vector_id} "
                f"is a level-{record.scale_level} patch, expected the coarse "
                "whole-image patch (scale_level 0) first"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: ImageDataset,
        embedding: EmbeddingModel,
        config: "SeeSawConfig | None" = None,
        store_kind: str = "exact",
        compute_db_alignment: bool = True,
        build_graph: bool = True,
    ) -> "SeeSawIndex":
        """Run the one-time preprocessing pass for ``dataset``.

        Parameters
        ----------
        dataset:
            The image dataset to index.
        embedding:
            The visual-semantic embedding used for patches and text.
        config:
            SeeSaw configuration; its ``multiscale`` section controls tiling.
        store_kind:
            ``"exact"`` for a brute-force store, ``"forest"`` for the
            Annoy-style approximate store, ``"quantized"`` for the int8
            candidate tier with exact re-rank, or ``"graph"`` for the
            navigable kNN-graph ANN tier (greedy descent + exact re-rank).
        compute_db_alignment:
            Whether to precompute the DB-alignment matrix ``M_D``.
        build_graph:
            Whether to build the kNN graph (needed for DB alignment, the
            propagation baseline, and ENS).
        """
        config = config or SeeSawConfig()
        vectors: list[np.ndarray] = []
        records: list[VectorRecord] = []
        image_vector_ids: dict[int, list[int]] = {}
        embed_start = time.perf_counter()
        vector_id = 0
        for image in dataset.images:
            patch_specs = generate_patches(image.width, image.height, config.multiscale)
            ids: list[int] = []
            for box, scale_level in patch_specs:
                vectors.append(embedding.embed_region(image, box))
                records.append(
                    VectorRecord(
                        vector_id=vector_id,
                        image_id=image.image_id,
                        box=box,
                        scale_level=scale_level,
                    )
                )
                ids.append(vector_id)
                vector_id += 1
            image_vector_ids[image.image_id] = ids
        embedding_seconds = time.perf_counter() - embed_start
        # Cast once to the configured compute dtype; the store then adopts
        # the stacked matrix as-is (float64 default stays the bit-parity
        # reference, float32 halves every scoring pass's memory traffic).
        matrix = ensure_dtype(
            np.stack(vectors), resolve_compute_dtype(config.compute_dtype)
        )

        store_start = time.perf_counter()
        if store_kind == "exact":
            store: VectorStore = ExactVectorStore(matrix, records)
        elif store_kind == "forest":
            store = RandomProjectionForest(matrix, records, seed=config.seed)
        elif store_kind == "quantized":
            store = QuantizedVectorStore(
                matrix, records, rerank_factor=config.quantized_rerank_factor
            )
        elif store_kind == "graph":
            store = GraphANNVectorStore(
                matrix,
                records,
                graph_degree=config.ann_graph_degree,
                ef=config.ann_ef,
                seed=config.seed,
            )
        else:
            raise IndexingError(f"Unknown store kind '{store_kind}'")
        store_seconds = time.perf_counter() - store_start

        graph_start = time.perf_counter()
        knn_graph = None
        db_matrix = None
        if build_graph:
            knn_graph = build_knn_graph(store.vectors, config.knn, seed=config.seed)
            if compute_db_alignment:
                db_matrix = compute_db_alignment_matrix(store.vectors, knn_graph)
        graph_seconds = time.perf_counter() - graph_start

        report = IndexBuildReport(
            dataset_name=dataset.name,
            image_count=len(dataset),
            vector_count=len(store),
            embedding_seconds=embedding_seconds,
            store_seconds=store_seconds,
            graph_seconds=graph_seconds,
            multiscale=config.multiscale.enabled,
        )
        return cls(
            dataset=dataset,
            embedding=embedding,
            store=store,
            image_vector_ids={k: tuple(v) for k, v in image_vector_ids.items()},
            knn_graph=knn_graph,
            db_matrix=db_matrix,
            config=config,
            build_report=report,
        )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def vector_count(self) -> int:
        """Number of stored vectors (patches)."""
        return len(self.store)

    @property
    def image_ids(self) -> tuple[int, ...]:
        """All indexed image ids, in index (segment-row) order."""
        if self._image_ids is None:
            self._image_ids = tuple(int(i) for i in self.segments.image_ids)
        return self._image_ids

    @property
    def engine(self) -> QueryEngine:
        """The (lazily built, cached) array-native query engine."""
        if self._engine is None:
            self._engine = QueryEngine(self.store, self.segments)
        return self._engine

    @property
    def batch_engine(self) -> BatchQueryEngine:
        """The (lazily built, cached) fused multi-session batch engine."""
        if self._batch_engine is None:
            self._batch_engine = BatchQueryEngine(self.engine)
        return self._batch_engine

    @property
    def engine_warmed(self) -> bool:
        """True once the query engine has been built (without building it)."""
        return self._engine is not None

    def replace_store(self, store: VectorStore) -> None:
        """Swap the vector store (e.g. for a sharded topology of the same data).

        The replacement must cover the same vectors: the segment layout,
        masks, and any engine built later all key off vector ids, so a store
        of a different size would silently corrupt every lookup.  Cached
        engines are dropped — they hold a reference to the old store.
        """
        if len(store) != self.segments.vector_count:
            raise IndexingError(
                f"replacement store holds {len(store)} vectors, index covers "
                f"{self.segments.vector_count}"
            )
        self.store = store
        self._engine = None
        self._batch_engine = None
        self._validate_coarse_first()

    def vector_ids_for_image(self, image_id: int) -> tuple[int, ...]:
        """The stored vector ids belonging to one image."""
        row = self.segments.row_for_image(image_id)
        return tuple(int(v) for v in self.segments.vector_ids_for_row(row))

    def vector_ids_for_images(self, image_ids: "frozenset[int] | set[int]") -> set[int]:
        """The union of vector ids for a set of images.

        Legacy adapter; hot paths use :class:`~repro.engine.SeenMask`
        boolean columns instead of materializing id sets.
        """
        ids: set[int] = set()
        for image_id in image_ids:
            ids.update(self.vector_ids_for_image(image_id))
        return ids

    def embed_query(self, text: str) -> np.ndarray:
        """Embed a text query with the index's embedding model."""
        return self.embedding.embed_text(text)

    def coarse_vector_ids(self) -> np.ndarray:
        """Vector ids of the coarse (whole-image) patches, in image order.

        This relies on the validated invariant that the first vector of
        every image segment is its coarse whole-image patch (checked at
        construction by ``_validate_coarse_first``).
        """
        return self.segments.first_vector_ids().copy()
