"""SeeSawQueryAligner: the query_align implementation of Listing 1.

On every feedback round the aligner minimises the SeeSaw loss (Equation 5)
over the small patch-level training set derived from user feedback, starting
from the CLIP text vector, and returns the minimiser as the next query
vector.  The amount of work grows with the amount of feedback, not with the
database size, which is what keeps the loop interactive (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LossWeights, OptimizerConfig, SeeSawConfig
from repro.core.loss import SeeSawLoss
from repro.exceptions import OptimizationError
from repro.optim.lbfgs import lbfgs_minimize
from repro.utils.linalg import normalize_vector


@dataclass
class AlignmentResult:
    """Outcome of one alignment round."""

    query_vector: np.ndarray
    loss_value: float
    iterations: int
    converged: bool
    used_feedback: int


class SeeSawQueryAligner:
    """Turns accumulated feedback into the next query vector.

    Parameters
    ----------
    query_text_vector:
        The CLIP embedding ``q_0`` of the user's text query (unit norm).
    db_matrix:
        The precomputed DB-alignment matrix ``M_D``; ``None`` disables the
        DB-alignment term.
    config:
        The SeeSaw configuration.  ``config.use_clip_alignment`` and
        ``config.use_db_alignment`` toggle the respective loss terms, and
        setting both to false (with ``lambda_clip = lambda_db = 0``) recovers
        the plain few-shot logistic-regression baseline.
    """

    def __init__(
        self,
        query_text_vector: np.ndarray,
        db_matrix: "np.ndarray | None" = None,
        config: "SeeSawConfig | None" = None,
    ) -> None:
        self.config = config or SeeSawConfig()
        self.query_text_vector = normalize_vector(
            np.asarray(query_text_vector, dtype=np.float64).ravel()
        )
        if not np.any(self.query_text_vector):
            raise OptimizationError("query_text_vector must be non-zero")
        self.db_matrix = db_matrix if self.config.use_db_alignment else None
        self._current = self.query_text_vector.copy()
        self._last_result: "AlignmentResult | None" = None

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def current_query_vector(self) -> np.ndarray:
        """The latest aligned query vector (initially the text vector)."""
        return self._current.copy()

    @property
    def last_result(self) -> "AlignmentResult | None":
        """Diagnostics from the most recent :meth:`align` call."""
        return self._last_result

    def _effective_weights(self) -> LossWeights:
        """Loss weights with disabled terms zeroed out."""
        weights = self.config.loss
        return LossWeights(
            lambda_norm=weights.lambda_norm,
            lambda_clip=weights.lambda_clip if self.config.use_clip_alignment else 0.0,
            lambda_db=weights.lambda_db if self.config.use_db_alignment else 0.0,
        )

    # ------------------------------------------------------------------
    # alignment
    # ------------------------------------------------------------------
    def align(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        optimizer_config: "OptimizerConfig | None" = None,
        sample_weights: "np.ndarray | None" = None,
    ) -> AlignmentResult:
        """Minimise the SeeSaw loss over the feedback set and update the query.

        With no feedback at all (or no informative labels when CLIP alignment
        is disabled) the aligner keeps the current query vector, matching the
        paper's default of trusting the zero-shot query until evidence
        accumulates.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels, dtype=np.float64).ravel()
        if features.size == 0 or labels.size == 0:
            result = AlignmentResult(
                query_vector=self._current.copy(),
                loss_value=0.0,
                iterations=0,
                converged=True,
                used_feedback=0,
            )
            self._last_result = result
            return result
        loss = SeeSawLoss(
            features=features,
            labels=labels,
            query_text_vector=self.query_text_vector,
            db_matrix=self.db_matrix,
            weights=self._effective_weights(),
            fit_bias=self.config.fit_bias,
            sample_weights=sample_weights,
        )
        start = loss.initial_parameters(self._scaled_start())
        outcome = lbfgs_minimize(loss, start, optimizer_config or self.config.optimizer)
        weight_vector, _ = loss.split_parameters(outcome.parameters)
        aligned = normalize_vector(weight_vector)
        if not np.any(aligned):
            aligned = self._current.copy()
        self._current = aligned
        result = AlignmentResult(
            query_vector=aligned.copy(),
            loss_value=outcome.value,
            iterations=outcome.iterations,
            converged=outcome.converged,
            used_feedback=int(labels.size),
        )
        self._last_result = result
        return result

    def _scaled_start(self) -> np.ndarray:
        """Starting point for the optimiser.

        The norm penalty ``lambda |w|^2`` makes the optimal weight vector much
        smaller than unit norm, so starting from a down-scaled copy of the
        current query speeds convergence without changing the minimiser.
        """
        scale = 1.0
        if self.config.loss.lambda_norm > 0:
            scale = min(1.0, 1.0 / np.sqrt(self.config.loss.lambda_norm))
        return self._current * scale

    def reset(self) -> None:
        """Forget all feedback and return to the zero-shot text vector."""
        self._current = self.query_text_vector.copy()
        self._last_result = None
