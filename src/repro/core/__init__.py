"""SeeSaw core: the paper's primary contribution.

* :mod:`repro.core.multiscale` — the multi-vector, multi-scale image
  representation (§4.3).
* :mod:`repro.core.indexing` — dataset preprocessing: patch embedding, vector
  store, kNN graph, and the DB-alignment matrix ``M_D`` (§2.4, §4.2).
* :mod:`repro.core.feedback` — box feedback and its conversion to patch labels.
* :mod:`repro.core.loss` — the SeeSaw loss (Equation 5 / Table 1) with
  analytic gradients.
* :mod:`repro.core.propagation` — label propagation and the collapsed
  quadratic DB-alignment term (§4.2).
* :mod:`repro.core.aligner` — :class:`SeeSawQueryAligner`, the query_align
  implementation of Listing 1.
* :mod:`repro.core.session` — the interactive search loop (Listing 1).
"""

from repro.core.aligner import SeeSawQueryAligner
from repro.core.feedback import BoxFeedback, FeedbackMap
from repro.core.indexing import SeeSawIndex
from repro.core.interfaces import ImageResult, SearchContext, SearchMethod
from repro.core.loss import SeeSawLoss
from repro.core.multiscale import generate_patches
from repro.core.propagation import compute_db_alignment_matrix, propagate_labels
from repro.core.seesaw_method import SeeSawSearchMethod
from repro.core.session import SearchSession

__all__ = [
    "SeeSawQueryAligner",
    "SeeSawLoss",
    "SeeSawIndex",
    "SeeSawSearchMethod",
    "SearchSession",
    "SearchContext",
    "SearchMethod",
    "ImageResult",
    "BoxFeedback",
    "FeedbackMap",
    "generate_patches",
    "compute_db_alignment_matrix",
    "propagate_labels",
]
