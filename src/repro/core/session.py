"""The interactive search loop of Listing 1.

A :class:`SearchSession` wires a :class:`SearchMethod` to a user (real or
simulated): it asks the method for the next batch of images, records the
feedback the user gives on them, hands the accumulated feedback back to the
method, and keeps the ordered history of shown images that the evaluation
metrics are computed over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.feedback import BoxFeedback, FeedbackMap
from repro.core.indexing import SeeSawIndex
from repro.core.interfaces import ImageResult, SearchContext, SearchMethod
from repro.data.geometry import BoundingBox
from repro.exceptions import SessionError


@dataclass
class SessionStep:
    """One image shown to the user and the feedback it received."""

    position: int
    result: ImageResult
    relevant: "bool | None" = None
    feedback_boxes: tuple[BoundingBox, ...] = ()


@dataclass
class SessionStats:
    """Latency accounting for one session (feeds Table 6)."""

    lookup_seconds: float = 0.0
    update_seconds: float = 0.0
    rounds: int = 0

    @property
    def seconds_per_round(self) -> float:
        """Mean per-iteration system latency (lookup + model update)."""
        if self.rounds == 0:
            return 0.0
        return (self.lookup_seconds + self.update_seconds) / self.rounds


@dataclass
class SearchSession:
    """Drives one text query through the interactive loop of Listing 1."""

    index: SeeSawIndex
    method: SearchMethod
    text_query: str
    batch_size: int = 1
    context: SearchContext = field(init=False)
    feedback: FeedbackMap = field(init=False, default_factory=FeedbackMap)
    history: "list[SessionStep]" = field(init=False, default_factory=list)
    stats: SessionStats = field(init=False, default_factory=SessionStats)
    _pending: "dict[int, ImageResult]" = field(init=False, default_factory=dict)
    _shown_set: "set[int]" = field(init=False, default_factory=set)
    _started: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise SessionError("batch_size must be >= 1")
        self.context = SearchContext(self.index)
        # The session owns one exclusion set, grown incrementally alongside
        # the context's SeenMask; binding it lets the context recognise the
        # session's own exclusions by identity (O(1)) instead of re-walking
        # the set every round.
        self.context.bind_session_exclusions(self._shown_set)
        self.method.begin(self.context, self.text_query)
        self._started = True

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    @property
    def shown_image_ids(self) -> "list[int]":
        """Image ids in the order they were shown."""
        return [step.result.image_id for step in self.history]

    @property
    def relevant_found(self) -> int:
        """Number of shown images the user marked relevant so far."""
        return sum(1 for step in self.history if step.relevant)

    def next_batch(self, count: "int | None" = None) -> "list[ImageResult]":
        """Fetch the next batch of images to show (Listing 1, line 4).

        Raises :class:`SessionError` if the previous batch has not been fully
        labelled yet, mirroring the UI flow where feedback is given per batch.
        """
        if self._pending:
            raise SessionError("previous batch still has unlabelled images")
        count = count or self.batch_size
        start = time.perf_counter()
        results = self.method.next_images(count, self._shown_set)
        self.stats.lookup_seconds += time.perf_counter() - start
        return self._record_shown(results)

    def _record_shown(self, results: "list[ImageResult]") -> "list[ImageResult]":
        """Post-lookup bookkeeping shared by the sequential and fused paths.

        History, pending feedback, the exclusion set, and the context's
        persistent SeenMask advance together — incrementally, O(batch) per
        round instead of re-deriving exclusion state from the full history.
        Having exactly one copy of this block is what keeps a fused round
        indistinguishable from a sequential one as the bookkeeping evolves.
        """
        for result in results:
            self.history.append(SessionStep(position=len(self.history), result=result))
            self._pending[result.image_id] = result
        shown = [result.image_id for result in results]
        self._shown_set.update(shown)
        self.context.mark_seen(shown)
        return results

    # ------------------------------------------------------------------
    # fused multi-session batching (driven by the service layer)
    # ------------------------------------------------------------------
    def fused_batch_state(
        self, count: "int | None" = None
    ) -> "tuple[np.ndarray, int, object] | None":
        """``(query_vector, count, seen_mask)`` when this round can be fused.

        ``None`` means the round must run through :meth:`next_batch` (the
        method keeps its ranking private, or the store is not exhaustive).
        Raises the same :class:`SessionError` as :meth:`next_batch` when the
        previous batch is still unlabelled, so the batch path enforces the
        per-batch feedback flow identically.
        """
        if self._pending:
            raise SessionError("previous batch still has unlabelled images")
        if not self.method.supports_fused_batch:
            return None
        query_vector = self.method.query_vector
        if query_vector is None or not self.index.store.exhaustive:
            return None
        return (
            np.asarray(query_vector, dtype=np.float64).ravel(),
            int(count or self.batch_size),
            self.context.seen_mask,
        )

    def apply_batch_results(
        self, results: "list[ImageResult]", lookup_seconds: float = 0.0
    ) -> "list[ImageResult]":
        """Record results the fused batch engine computed for this session.

        Performs exactly the bookkeeping :meth:`next_batch` does after
        ``method.next_images`` — history, pending feedback, exclusion set,
        persistent mask — so a fused round is indistinguishable from a
        sequential one to everything downstream.  ``lookup_seconds`` is this
        session's share of the fused dispatch, credited to the same stats
        Table 6 reads.
        """
        if self._pending:
            raise SessionError("previous batch still has unlabelled images")
        self.stats.lookup_seconds += lookup_seconds
        return self._record_shown(results)

    def give_feedback(
        self,
        image_id: int,
        relevant: bool,
        boxes: Iterable[BoundingBox] = (),
    ) -> None:
        """Record the user's judgement for one image of the current batch."""
        if image_id not in self._pending:
            raise SessionError(f"Image {image_id} is not awaiting feedback")
        boxes = tuple(boxes)
        if relevant and not boxes:
            # A relevant image without an explicit region defaults to a
            # whole-image box, the coarsest possible positive annotation.
            image = self.index.dataset.image(image_id)
            boxes = (image.full_box,)
        feedback = (
            BoxFeedback.positive(image_id, boxes)
            if relevant
            else BoxFeedback.negative(image_id)
        )
        self.feedback.update(feedback)
        for step in reversed(self.history):
            if step.result.image_id == image_id:
                step.relevant = relevant
                step.feedback_boxes = boxes
                break
        del self._pending[image_id]
        if not self._pending:
            self._update_method()

    def _update_method(self) -> None:
        """Hand the accumulated feedback to the method (Listing 1, line 7)."""
        start = time.perf_counter()
        self.method.observe(self.feedback)
        self.stats.update_seconds += time.perf_counter() - start
        self.stats.rounds += 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def relevance_sequence(self) -> "list[bool]":
        """The shown images' relevance judgements, in display order.

        Unlabelled images (for example when a run is cut off mid-batch) count
        as not relevant, which matches how the benchmark scores truncated
        sessions.
        """
        return [bool(step.relevant) for step in self.history]
