"""The full SeeSaw search method: aligner + vector-store lookups.

This is the strategy the paper proposes: start from the CLIP text vector,
look up the best unseen image in the vector store, and after each round of
box feedback re-align the query vector with the SeeSaw loss (CLIP alignment +
DB alignment) before the next lookup.
"""

from __future__ import annotations

import numpy as np

from repro.config import SeeSawConfig
from repro.core.aligner import SeeSawQueryAligner
from repro.core.feedback import FeedbackMap
from repro.core.interfaces import ImageResult, SearchContext, SearchMethod
from repro.exceptions import SessionError


class SeeSawSearchMethod(SearchMethod):
    """SeeSaw: CLIP alignment + DB alignment over multiscale patch vectors."""

    name = "seesaw"

    # next_images is exactly top_unseen_images(query_vector, ...): eligible
    # for fused multi-session batch scoring (see SearchMethod docs).
    supports_fused_batch = True

    def __init__(self, config: "SeeSawConfig | None" = None) -> None:
        self.config = config or SeeSawConfig()
        self._context: "SearchContext | None" = None
        self._aligner: "SeeSawQueryAligner | None" = None

    # ------------------------------------------------------------------
    # SearchMethod interface
    # ------------------------------------------------------------------
    def begin(self, context: SearchContext, text_query: str) -> None:
        self._context = context
        query_vector = context.embed_text(text_query)
        db_matrix = context.index.db_matrix if self.config.use_db_alignment else None
        self._aligner = SeeSawQueryAligner(
            query_text_vector=query_vector,
            db_matrix=db_matrix,
            config=self.config,
        )

    def next_images(
        self, count: int, excluded_image_ids: "frozenset[int] | set[int]"
    ) -> "list[ImageResult]":
        # The context resolves the exclusion set against the session's
        # persistent SeenMask and runs the columnar engine lookup (mask,
        # reduceat max-pool, argpartition) — the per-round hot path.
        context, aligner = self._require_started()
        return context.top_unseen_images(
            aligner.current_query_vector, count, excluded_image_ids
        )

    def observe(self, feedback: FeedbackMap) -> None:
        context, aligner = self._require_started()
        features, labels, weights, _ = feedback.to_weighted_patch_labels(context.index)
        aligner.align(features, labels, sample_weights=weights if weights.size else None)

    @property
    def query_vector(self) -> "np.ndarray | None":
        if self._aligner is None:
            return None
        return self._aligner.current_query_vector

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _require_started(self) -> "tuple[SearchContext, SeeSawQueryAligner]":
        if self._context is None or self._aligner is None:
            raise SessionError("SeeSawSearchMethod.begin must be called before use")
        return self._context, self._aligner
