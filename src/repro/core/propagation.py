"""Label propagation and the collapsed DB-alignment matrix (§4.2).

Two pieces live here:

* :func:`propagate_labels` — the Zhu & Ghahramani label-propagation algorithm
  over the kNN graph.  It is the conceptual starting point of DB alignment
  and also powers the "SeeSaw prop." latency/accuracy comparison (Table 6).
* :func:`compute_db_alignment_matrix` — the once-per-dataset precomputation of
  ``M_D = X_D^T (D - W) X_D``, the d x d matrix that lets SeeSaw apply the
  same smoothness pressure as propagation without touching the full database
  at query time.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import IndexingError
from repro.knng.graph import KnnGraph


def compute_db_alignment_matrix(
    vectors: np.ndarray,
    graph: KnnGraph,
    normalize_by_count: bool = True,
) -> np.ndarray:
    """Compute ``M_D = X^T (D - W) X`` from the database vectors and kNN graph.

    Parameters
    ----------
    vectors:
        ``(count, d)`` matrix of database vectors ``X_D``.
    graph:
        The kNN graph built over the same vectors.
    normalize_by_count:
        When true the matrix is divided by the number of vectors, turning the
        sum over graph edges into a mean.  The paper leaves the scaling
        implicit in ``lambda_DB``; normalising keeps the reported
        ``lambda_DB = 1000`` meaningful across database sizes.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise IndexingError("vectors must be 2-d (count x dim)")
    if vectors.shape[0] != graph.node_count:
        raise IndexingError(
            f"graph has {graph.node_count} nodes but {vectors.shape[0]} vectors were given"
        )
    laplacian = graph.laplacian()
    matrix = vectors.T @ (laplacian @ vectors)
    if normalize_by_count:
        matrix = matrix / float(vectors.shape[0])
    # Numerical symmetrisation; the Laplacian is symmetric so M_D should be.
    return (matrix + matrix.T) / 2.0


def smoothness_penalty(matrix: np.ndarray, query: np.ndarray) -> float:
    """Evaluate ``(w/|w|)^T M_D (w/|w|)`` — the DB-alignment penalty of a query."""
    query = np.asarray(query, dtype=np.float64).ravel()
    norm = float(np.linalg.norm(query))
    if norm == 0.0:
        return 0.0
    unit = query / norm
    return float(unit @ (np.asarray(matrix, dtype=np.float64) @ unit))


def propagate_labels(
    graph: KnnGraph,
    labeled: "dict[int, float]",
    iterations: int = 30,
    tolerance: float = 1e-5,
    prior: "np.ndarray | None" = None,
) -> np.ndarray:
    """Propagate a handful of labels over the kNN graph (Zhu & Ghahramani).

    Labelled nodes are clamped to their labels on every iteration; unlabelled
    nodes repeatedly take the weighted average of their neighbours.  Returns a
    soft label in [0, 1] for every node.

    Parameters
    ----------
    graph:
        The kNN graph over the database vectors.
    labeled:
        Mapping from node index to its observed label (0 or 1).
    iterations:
        Maximum number of propagation sweeps.
    tolerance:
        Early-stopping threshold on the largest per-node change.
    prior:
        Optional initial score per node (for example calibrated CLIP scores);
        defaults to 0.5 for unlabelled nodes.
    """
    count = graph.node_count
    if prior is None:
        scores = np.full(count, 0.5, dtype=np.float64)
    else:
        scores = np.asarray(prior, dtype=np.float64).copy()
        if scores.shape[0] != count:
            raise IndexingError("prior must have one entry per graph node")
    labeled_ids = np.array(sorted(labeled), dtype=np.int64)
    if labeled_ids.size and (labeled_ids.min() < 0 or labeled_ids.max() >= count):
        raise IndexingError("labeled node index out of range")
    labeled_values = np.array([labeled[int(i)] for i in labeled_ids], dtype=np.float64)

    # The row-normalized D^{-1} W is cached on the graph: the propagation
    # baseline calls this once per feedback round and must not rebuild it.
    transition = graph.transition()

    scores[labeled_ids] = labeled_values
    for _ in range(iterations):
        updated = transition @ scores
        updated[labeled_ids] = labeled_values
        change = float(np.max(np.abs(updated - scores))) if count else 0.0
        scores = updated
        if change < tolerance:
            break
    return np.clip(scores, 0.0, 1.0)
