"""Interfaces shared by SeeSaw and the baseline search methods.

Every method (zero-shot CLIP, few-shot CLIP, Rocchio, ENS, SeeSaw, the
propagation variant) is a :class:`SearchMethod`: it starts from a text query,
proposes the next images to show, and updates its internal state from the
accumulated feedback.  :class:`SearchSession` (Listing 1) drives any of them
through the same loop, which is how the benchmarks compare them fairly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.feedback import FeedbackMap
from repro.core.indexing import SeeSawIndex
from repro.data.geometry import BoundingBox
from repro.engine import SeenMask
from repro.exceptions import SessionError


@dataclass(frozen=True)
class ImageResult:
    """One image proposed to the user, with the patch that triggered it."""

    image_id: int
    score: float
    vector_id: int
    box: BoundingBox


class SearchContext:
    """What a search method is allowed to see: the index, never the labels.

    The context is engine-backed: it owns the session's persistent
    :class:`~repro.engine.SeenMask`, which the session updates incrementally
    as batches are shown, and adapts the engine's aligned result columns to
    the public :class:`ImageResult` API.
    """

    def __init__(self, index: SeeSawIndex) -> None:
        self.index = index
        self.engine = index.engine
        self.seen_mask = self.engine.new_mask()
        self._session_exclusions: "set[int] | None" = None

    @property
    def store(self):
        """The vector store of the indexed dataset."""
        return self.index.store

    @property
    def embedding(self):
        """The embedding model used for text queries."""
        return self.index.embedding

    def embed_text(self, text: str) -> np.ndarray:
        """Embed the user's text query."""
        return self.index.embed_query(text)

    # ------------------------------------------------------------------
    # seen-state bookkeeping
    # ------------------------------------------------------------------
    def mark_seen(self, image_ids: "list[int] | tuple[int, ...]") -> None:
        """Incrementally mark shown images in the session's persistent mask."""
        self.seen_mask.mark_images(image_ids)

    def bind_session_exclusions(self, excluded_image_ids: "set[int]") -> None:
        """Register the session-owned exclusion set.

        The session grows this set and the persistent mask together, so
        :meth:`mask_for` can recognise it by identity — an O(1) check
        instead of re-verifying membership of every shown image each round.
        """
        self._session_exclusions = excluded_image_ids

    def mask_for(
        self, excluded_image_ids: "frozenset[int] | set[int]"
    ) -> "SeenMask | None":
        """The mask matching an exclusion set — the result is read-only.

        The session's own exclusion set (bound via
        :meth:`bind_session_exclusions`, the call pattern of every
        :class:`SearchMethod` driven by ``SearchSession``) resolves to the
        persistent mask by identity; any other set that happens to equal
        the seen state reuses it too, and everything else gets an ephemeral
        mask.  Callers that want to mutate the mask must ``copy()`` it —
        its public columns reject writes.
        """
        if not excluded_image_ids:
            return None
        if (
            excluded_image_ids is self._session_exclusions
            or self.seen_mask.covers_exactly(excluded_image_ids)
        ):
            return self.seen_mask
        return self.engine.mask_for_images(excluded_image_ids)

    # ------------------------------------------------------------------
    # result selection helpers
    # ------------------------------------------------------------------
    def top_unseen_images(
        self,
        query_vector: np.ndarray,
        count: int,
        excluded_image_ids: "frozenset[int] | set[int]",
    ) -> "list[ImageResult]":
        """The ``count`` best-scoring unseen images for ``query_vector``.

        Patch hits are grouped into images (an image scores the maximum of
        its patches, §4.3).  The selection runs entirely in the columnar
        engine — scores masked once, max-pooled with ``reduceat``, images
        argpartitioned directly; ``ImageResult`` objects are materialized
        only for the ``count`` selected images.
        """
        if count < 1:
            raise SessionError("count must be >= 1")
        image_ids, scores, vector_ids = self.engine.top_unseen_arrays(
            query_vector, count, self.mask_for(excluded_image_ids)
        )
        return self.results_from_arrays(image_ids, scores, vector_ids)

    def results_from_arrays(
        self,
        image_ids: np.ndarray,
        scores: np.ndarray,
        vector_ids: np.ndarray,
    ) -> "list[ImageResult]":
        """Adapt the engine's aligned columns to ``ImageResult`` objects."""
        store = self.store
        return [
            ImageResult(
                image_id=int(image_id),
                score=float(score),
                vector_id=int(vector_id),
                box=store.record(int(vector_id)).box,
            )
            for image_id, score, vector_id in zip(image_ids, scores, vector_ids)
        ]

    def score_all_images_array(self, query_vector: np.ndarray) -> np.ndarray:
        """Max-pooled per-image scores aligned with ``index.segments.image_ids``.

        This is a full linear scan; SeeSaw itself avoids it, but baselines
        such as ENS and label propagation need global scores (which is
        precisely the scaling problem Table 6 documents).
        """
        return self.engine.score_all_images(query_vector)

    def score_all_images(self, query_vector: np.ndarray) -> "dict[int, float]":
        """Legacy dict adapter over :meth:`score_all_images_array`."""
        scores = self.score_all_images_array(query_vector)
        return {
            int(image_id): float(score)
            for image_id, score in zip(self.index.segments.image_ids, scores)
        }


class SearchMethod(ABC):
    """A relevance-feedback search strategy driven by :class:`SearchSession`."""

    name: str = "method"

    supports_fused_batch: bool = False
    """Opt-in contract for fused multi-session scoring.

    A method sets this True only when its :meth:`next_images` is exactly
    ``context.top_unseen_images(self.query_vector, count, excluded)`` — no
    extra state reads, no side effects.  The service may then score the
    method's round inside a :class:`~repro.engine.batch.BatchQueryEngine`
    cohort (one GEMM for many sessions): same semantics and same selected
    images as the sequential round, with scores agreeing to last-bit
    rounding (the fused GEMM blocks its reduction differently from the
    row-wise kernel, so images tied within ~1 ulp could in principle
    resolve differently).  Methods that rank by anything other than their
    exposed query vector (label propagation, ENS) must leave it False.
    """

    @abstractmethod
    def begin(self, context: SearchContext, text_query: str) -> None:
        """Reset internal state and start a new search from ``text_query``."""

    @abstractmethod
    def next_images(
        self, count: int, excluded_image_ids: "frozenset[int] | set[int]"
    ) -> "list[ImageResult]":
        """Propose the next ``count`` images, never repeating excluded ones."""

    @abstractmethod
    def observe(self, feedback: FeedbackMap) -> None:
        """Incorporate the feedback accumulated so far (Listing 1, line 7)."""

    @property
    def query_vector(self) -> "np.ndarray | None":
        """The method's current internal query vector, when it has one."""
        return None
