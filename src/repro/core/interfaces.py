"""Interfaces shared by SeeSaw and the baseline search methods.

Every method (zero-shot CLIP, few-shot CLIP, Rocchio, ENS, SeeSaw, the
propagation variant) is a :class:`SearchMethod`: it starts from a text query,
proposes the next images to show, and updates its internal state from the
accumulated feedback.  :class:`SearchSession` (Listing 1) drives any of them
through the same loop, which is how the benchmarks compare them fairly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.feedback import FeedbackMap
from repro.core.indexing import SeeSawIndex
from repro.data.geometry import BoundingBox
from repro.exceptions import SessionError
from repro.vectorstore.exact import ExactVectorStore


@dataclass(frozen=True)
class ImageResult:
    """One image proposed to the user, with the patch that triggered it."""

    image_id: int
    score: float
    vector_id: int
    box: BoundingBox


class SearchContext:
    """What a search method is allowed to see: the index, never the labels."""

    def __init__(self, index: SeeSawIndex) -> None:
        self.index = index

    @property
    def store(self):
        """The vector store of the indexed dataset."""
        return self.index.store

    @property
    def embedding(self):
        """The embedding model used for text queries."""
        return self.index.embedding

    def embed_text(self, text: str) -> np.ndarray:
        """Embed the user's text query."""
        return self.index.embed_query(text)

    # ------------------------------------------------------------------
    # result selection helpers
    # ------------------------------------------------------------------
    def top_unseen_images(
        self,
        query_vector: np.ndarray,
        count: int,
        excluded_image_ids: "frozenset[int] | set[int]",
    ) -> "list[ImageResult]":
        """The ``count`` best-scoring unseen images for ``query_vector``.

        Patch hits are grouped into images (an image scores the maximum of
        its patches, §4.3); images already shown are excluded via their
        stored vector ids so the store lookup does the filtering.
        """
        if count < 1:
            raise SessionError("count must be >= 1")
        excluded_vectors = self.index.vector_ids_for_images(excluded_image_ids)
        per_image = max(1, round(self.index.vector_count / max(1, len(self.index.image_ids))))
        k = count * per_image + len(excluded_vectors)
        results: list[ImageResult] = []
        while True:
            k = min(k, self.index.vector_count)
            hits = self.store.search(query_vector, k=k, exclude_vector_ids=excluded_vectors)
            results = []
            seen: set[int] = set()
            for hit in hits:
                image_id = hit.record.image_id
                if image_id in excluded_image_ids or image_id in seen:
                    continue
                seen.add(image_id)
                results.append(
                    ImageResult(
                        image_id=image_id,
                        score=hit.score,
                        vector_id=hit.vector_id,
                        box=hit.record.box,
                    )
                )
                if len(results) >= count:
                    return results
            if k >= self.index.vector_count:
                return results
            k *= 2

    def score_all_images(self, query_vector: np.ndarray) -> "dict[int, float]":
        """Max-pooled per-image scores over the whole database.

        This is a full linear scan; SeeSaw itself avoids it, but baselines
        such as ENS and label propagation need global scores (which is
        precisely the scaling problem Table 6 documents).
        """
        store = self.store
        if isinstance(store, ExactVectorStore):
            scores = store.score_all(query_vector)
        else:
            scores = store.vectors @ np.asarray(query_vector, dtype=np.float64)
        image_scores: dict[int, float] = {}
        for image_id in self.index.image_ids:
            vector_ids = np.asarray(self.index.vector_ids_for_image(image_id), dtype=np.int64)
            image_scores[image_id] = float(scores[vector_ids].max())
        return image_scores


class SearchMethod(ABC):
    """A relevance-feedback search strategy driven by :class:`SearchSession`."""

    name: str = "method"

    @abstractmethod
    def begin(self, context: SearchContext, text_query: str) -> None:
        """Reset internal state and start a new search from ``text_query``."""

    @abstractmethod
    def next_images(
        self, count: int, excluded_image_ids: "frozenset[int] | set[int]"
    ) -> "list[ImageResult]":
        """Propose the next ``count`` images, never repeating excluded ones."""

    @abstractmethod
    def observe(self, feedback: FeedbackMap) -> None:
        """Incorporate the feedback accumulated so far (Listing 1, line 7)."""

    @property
    def query_vector(self) -> "np.ndarray | None":
        """The method's current internal query vector, when it has one."""
        return None
