"""The SeeSaw loss function (Equation 5 / Table 1) with analytic gradients.

The loss combines four terms:

* logistic loss on the user's patch-level feedback ("fit user feedback"),
* an L2 norm penalty on the weight vector ("but avoid |w| -> inf"),
* the CLIP-alignment term ``lambda_text * (1 - w.q_text / |w|)`` ("prefer w
  aligned with q_text", §4.1),
* the DB-alignment term ``lambda_DB * (w/|w|)^T M_D (w/|w|)`` ("prefer w
  aligned with the database", §4.2).

The bias term ``b`` of the logistic model is optional and disabled by default,
matching the paper's observation (§3.2) that fitting it hurts the learned
vector's quality as a query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import LossWeights
from repro.exceptions import OptimizationError
from repro.utils.validation import check_finite

_EPSILON = 1e-12


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    values = np.asarray(values, dtype=np.float64)
    out = np.empty_like(values)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exponent = np.exp(values[~positive])
    out[~positive] = exponent / (1.0 + exponent)
    return out


def log_loss(labels: np.ndarray, probabilities: np.ndarray) -> float:
    """Summed binary cross-entropy, clipped for numerical safety."""
    probabilities = np.clip(probabilities, 1e-12, 1.0 - 1e-12)
    labels = np.asarray(labels, dtype=np.float64)
    return float(
        -np.sum(labels * np.log(probabilities) + (1.0 - labels) * np.log(1.0 - probabilities))
    )


def weighted_log_loss(
    labels: np.ndarray, probabilities: np.ndarray, sample_weights: np.ndarray
) -> float:
    """Binary cross-entropy with a non-negative weight per example."""
    probabilities = np.clip(probabilities, 1e-12, 1.0 - 1e-12)
    labels = np.asarray(labels, dtype=np.float64)
    per_example = -(
        labels * np.log(probabilities) + (1.0 - labels) * np.log(1.0 - probabilities)
    )
    return float(np.sum(sample_weights * per_example))


@dataclass
class LossBreakdown:
    """The value of each term of the loss at a given parameter vector."""

    data_term: float
    norm_term: float
    clip_term: float
    db_term: float

    @property
    def total(self) -> float:
        """Sum of all terms."""
        return self.data_term + self.norm_term + self.clip_term + self.db_term


class SeeSawLoss:
    """Differentiable SeeSaw objective over a small feedback training set.

    Parameters
    ----------
    features:
        ``(n, d)`` matrix of patch vectors with user feedback.
    labels:
        ``(n,)`` vector of 0/1 labels derived from box feedback.
    query_text_vector:
        The original CLIP text vector ``q_0`` (unit norm).
    db_matrix:
        The ``(d, d)`` DB-alignment matrix ``M_D``; ``None`` disables the term.
    weights:
        The regularisation weights (lambda, lambda_text, lambda_DB).
    fit_bias:
        Whether to fit the logistic bias ``b`` (off by default, see §3.2).
    sample_weights:
        Optional per-example weights on the logistic term.  The multiscale
        representation multiplies the number of labelled vectors per image by
        an order of magnitude (§4.3); weighting each patch by one over its
        image's patch count keeps the data term on the same scale whether or
        not multiscale is enabled, so one set of lambda values works for both.
    """

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        query_text_vector: np.ndarray,
        db_matrix: "np.ndarray | None" = None,
        weights: "LossWeights | None" = None,
        fit_bias: bool = False,
        sample_weights: "np.ndarray | None" = None,
    ) -> None:
        self.features = check_finite("features", np.atleast_2d(np.asarray(features, dtype=np.float64)))
        self.labels = np.asarray(labels, dtype=np.float64).ravel()
        if self.features.shape[0] != self.labels.shape[0]:
            raise OptimizationError("features and labels must have the same length")
        if sample_weights is None:
            self.sample_weights = np.ones_like(self.labels)
        else:
            self.sample_weights = np.asarray(sample_weights, dtype=np.float64).ravel()
            if self.sample_weights.shape != self.labels.shape:
                raise OptimizationError("sample_weights must match labels in length")
            if np.any(self.sample_weights < 0):
                raise OptimizationError("sample_weights must be non-negative")
        self.query_text_vector = check_finite(
            "query_text_vector", np.asarray(query_text_vector, dtype=np.float64).ravel()
        )
        self.dim = self.query_text_vector.shape[0]
        if self.features.size and self.features.shape[1] != self.dim:
            raise OptimizationError(
                "feature dimension does not match the query vector dimension"
            )
        self.weights = weights or LossWeights()
        self.fit_bias = bool(fit_bias)
        if db_matrix is None:
            self.db_matrix = None
        else:
            db_matrix = check_finite("db_matrix", np.asarray(db_matrix, dtype=np.float64))
            if db_matrix.shape != (self.dim, self.dim):
                raise OptimizationError(
                    f"db_matrix must be ({self.dim}, {self.dim}), got {db_matrix.shape}"
                )
            # Work with the symmetrised matrix so the gradient 2 M w is exact.
            self.db_matrix = (db_matrix + db_matrix.T) / 2.0

    # ------------------------------------------------------------------
    # parameter packing
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Size of the flat parameter vector (d, or d+1 with a bias)."""
        return self.dim + (1 if self.fit_bias else 0)

    def initial_parameters(self, initial_vector: "np.ndarray | None" = None) -> np.ndarray:
        """A reasonable starting point: the CLIP text vector (zero bias)."""
        start = self.query_text_vector if initial_vector is None else np.asarray(
            initial_vector, dtype=np.float64
        ).ravel()
        if start.shape[0] != self.dim:
            raise OptimizationError("initial vector has the wrong dimension")
        if self.fit_bias:
            return np.concatenate([start, [0.0]])
        return start.copy()

    def split_parameters(self, parameters: np.ndarray) -> tuple[np.ndarray, float]:
        """Split a flat parameter vector into ``(w, b)``."""
        parameters = np.asarray(parameters, dtype=np.float64).ravel()
        if parameters.shape[0] != self.parameter_count:
            raise OptimizationError(
                f"expected {self.parameter_count} parameters, got {parameters.shape[0]}"
            )
        if self.fit_bias:
            return parameters[:-1], float(parameters[-1])
        return parameters, 0.0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def breakdown(self, parameters: np.ndarray) -> LossBreakdown:
        """The value of each loss term at ``parameters``."""
        w, b = self.split_parameters(parameters)
        norm = float(np.linalg.norm(w))
        data_term = 0.0
        if self.features.size:
            probabilities = sigmoid(self.features @ w + b)
            data_term = weighted_log_loss(self.labels, probabilities, self.sample_weights)
        norm_term = self.weights.lambda_norm * float(w @ w)
        clip_term = 0.0
        if self.weights.lambda_clip > 0:
            cosine = float(w @ self.query_text_vector) / max(norm, _EPSILON)
            clip_term = self.weights.lambda_clip * (1.0 - cosine)
        db_term = 0.0
        if self.db_matrix is not None and self.weights.lambda_db > 0:
            quadratic = float(w @ (self.db_matrix @ w)) / max(norm * norm, _EPSILON)
            db_term = self.weights.lambda_db * quadratic
        return LossBreakdown(data_term, norm_term, clip_term, db_term)

    def __call__(self, parameters: np.ndarray) -> tuple[float, np.ndarray]:
        """Loss value and gradient with respect to the flat parameter vector."""
        w, b = self.split_parameters(parameters)
        norm = float(np.linalg.norm(w))
        norm = max(norm, _EPSILON)
        gradient_w = np.zeros_like(w)
        gradient_b = 0.0
        value = 0.0

        if self.features.size:
            logits = self.features @ w + b
            probabilities = sigmoid(logits)
            value += weighted_log_loss(self.labels, probabilities, self.sample_weights)
            error = self.sample_weights * (probabilities - self.labels)
            gradient_w += self.features.T @ error
            gradient_b += float(np.sum(error))

        value += self.weights.lambda_norm * float(w @ w)
        gradient_w += 2.0 * self.weights.lambda_norm * w

        if self.weights.lambda_clip > 0:
            inner = float(w @ self.query_text_vector)
            cosine = inner / norm
            value += self.weights.lambda_clip * (1.0 - cosine)
            gradient_w += self.weights.lambda_clip * (
                -self.query_text_vector / norm + inner * w / norm**3
            )

        if self.db_matrix is not None and self.weights.lambda_db > 0:
            mw = self.db_matrix @ w
            quadratic = float(w @ mw) / (norm * norm)
            value += self.weights.lambda_db * quadratic
            gradient_w += self.weights.lambda_db * 2.0 * (mw - quadratic * w) / (norm * norm)

        if self.fit_bias:
            gradient = np.concatenate([gradient_w, [gradient_b]])
        else:
            gradient = gradient_w
        return float(value), gradient
