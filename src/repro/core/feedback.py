"""User feedback: box annotations and their conversion to patch labels.

The user marks relevant regions with boxes (or marks a whole image as not
relevant).  Patch vectors whose pre-indexed box overlaps a feedback box are
treated as positive examples for the next alignment round; patches of the
same image with no overlap are negatives, and every patch of an image marked
not-relevant is a negative (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

import numpy as np

from repro.data.geometry import BoundingBox
from repro.exceptions import SessionError

if TYPE_CHECKING:  # pragma: no cover - import only used for type checking
    from repro.core.indexing import SeeSawIndex


@dataclass(frozen=True)
class BoxFeedback:
    """Feedback for one image: relevant region boxes, or a negative judgement."""

    image_id: int
    relevant: bool
    boxes: tuple[BoundingBox, ...] = ()

    def __post_init__(self) -> None:
        if self.relevant and not self.boxes:
            raise SessionError(
                f"Image {self.image_id} marked relevant requires at least one box"
            )
        if not self.relevant and self.boxes:
            raise SessionError(
                f"Image {self.image_id} marked not relevant must not carry boxes"
            )

    @staticmethod
    def positive(image_id: int, boxes: Iterable[BoundingBox]) -> "BoxFeedback":
        """Feedback marking ``image_id`` relevant with the given region boxes."""
        return BoxFeedback(image_id=image_id, relevant=True, boxes=tuple(boxes))

    @staticmethod
    def negative(image_id: int) -> "BoxFeedback":
        """Feedback marking ``image_id`` not relevant."""
        return BoxFeedback(image_id=image_id, relevant=False)


@dataclass
class FeedbackMap:
    """Accumulated feedback across a search session (Listing 1, line 6)."""

    _items: "dict[int, BoxFeedback]" = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, image_id: int) -> bool:
        return image_id in self._items

    def __iter__(self) -> Iterator[BoxFeedback]:
        return iter(self._items.values())

    def update(self, feedback: BoxFeedback) -> None:
        """Record (or overwrite) the feedback for one image."""
        self._items[feedback.image_id] = feedback

    def get(self, image_id: int) -> "BoxFeedback | None":
        """The feedback recorded for ``image_id``, if any."""
        return self._items.get(image_id)

    @property
    def image_ids(self) -> frozenset[int]:
        """Every image that has received feedback."""
        return frozenset(self._items)

    @property
    def positive_count(self) -> int:
        """Number of images marked relevant."""
        return sum(1 for feedback in self._items.values() if feedback.relevant)

    @property
    def negative_count(self) -> int:
        """Number of images marked not relevant."""
        return len(self._items) - self.positive_count

    def as_mapping(self) -> Mapping[int, BoxFeedback]:
        """Read-only view of the feedback by image id."""
        return dict(self._items)

    # ------------------------------------------------------------------
    # training-set construction
    # ------------------------------------------------------------------
    def to_patch_labels(
        self, index: "SeeSawIndex", min_box_overlap: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Convert feedback into a patch-level training set.

        Returns ``(vectors, labels, vector_ids)`` where each row of ``vectors``
        is a stored patch vector of an image with feedback, and ``labels`` is 1
        for patches overlapping a positive feedback box and 0 otherwise.
        """
        vector_ids: list[int] = []
        labels: list[float] = []
        for feedback in self._items.values():
            for vector_id in index.vector_ids_for_image(feedback.image_id):
                record = index.store.record(vector_id)
                if feedback.relevant:
                    overlap = any(
                        record.box.intersection(box) > min_box_overlap
                        for box in feedback.boxes
                    )
                    labels.append(1.0 if overlap else 0.0)
                else:
                    labels.append(0.0)
                vector_ids.append(vector_id)
        if not vector_ids:
            dim = index.store.dim
            return np.zeros((0, dim)), np.zeros(0), np.zeros(0, dtype=np.int64)
        ids = np.asarray(vector_ids, dtype=np.int64)
        vectors = np.asarray(index.store.vectors[ids])
        return vectors, np.asarray(labels, dtype=np.float64), ids

    def to_weighted_patch_labels(
        self, index: "SeeSawIndex", min_box_overlap: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Patch training set plus per-example weights of 1 / (patches per image).

        With the multiscale representation a single image contributes an order
        of magnitude more labelled vectors than a coarse index does; these
        weights keep each *image* contributing one unit to the data term, so
        the loss weights behave the same in both regimes.
        """
        vectors, labels, vector_ids = self.to_patch_labels(index, min_box_overlap)
        if vector_ids.size == 0:
            return vectors, labels, np.zeros(0), vector_ids
        # Patch counts come straight from the index's CSR segment columns:
        # vector id -> image row -> segment length, no per-vector record
        # lookups or dict walks.
        segments = index.segments
        weights = 1.0 / segments.counts[segments.vector_image_rows[vector_ids]]
        return vectors, labels, weights, vector_ids

    def to_image_labels(self) -> "dict[int, float]":
        """Image-level labels (1 relevant / 0 not), used by coarse-only methods."""
        return {
            feedback.image_id: 1.0 if feedback.relevant else 0.0
            for feedback in self._items.values()
        }
