"""Multi-scale, multi-vector image representation (§4.3).

An image maps to one *coarse* patch covering the whole image plus, when the
image is large enough, a grid of finer patches whose side is a fraction of
the image (half by default), strided by half a patch.  Each patch is embedded
separately; at query time an image's score is the maximum over its patches.
"""

from __future__ import annotations

import numpy as np

from repro.config import MultiscaleConfig
from repro.data.geometry import BoundingBox
from repro.data.image import SyntheticImage
from repro.embedding.base import EmbeddingModel

COARSE_LEVEL = 0
FINE_LEVEL = 1


def _strided_positions(image_side: float, patch_side: float, stride: float) -> list[float]:
    """Patch origins along one axis, always including a final edge-aligned one."""
    if patch_side >= image_side:
        return [0.0]
    positions = list(np.arange(0.0, image_side - patch_side + 1e-9, stride))
    last = image_side - patch_side
    if not positions or positions[-1] < last - 1e-6:
        positions.append(last)
    return [float(p) for p in positions]


def generate_patches(
    width: int, height: int, config: "MultiscaleConfig | None" = None
) -> "list[tuple[BoundingBox, int]]":
    """Enumerate the (box, scale_level) patches for an image of the given size.

    The coarse full-image patch is always present.  Finer patches are added
    only when ``config.enabled`` and the patch side would be at least
    ``config.min_patch_pixels`` — e.g. a 224x224 ObjectNet image maps to a
    single coarse vector, while a 1280x720 BDD frame maps to the coarse vector
    plus a grid of 360-pixel patches.
    """
    config = config or MultiscaleConfig()
    patches: list[tuple[BoundingBox, int]] = [
        (BoundingBox.full_image(width, height), COARSE_LEVEL)
    ]
    if not config.enabled:
        return patches
    patch_side = config.patch_fraction * min(width, height)
    if patch_side < config.min_patch_pixels:
        return patches
    stride = config.stride_fraction * patch_side
    xs = _strided_positions(float(width), patch_side, stride)
    ys = _strided_positions(float(height), patch_side, stride)
    for y in ys:
        for x in xs:
            patches.append((BoundingBox(x, y, patch_side, patch_side), FINE_LEVEL))
    return patches


def embed_image_patches(
    image: SyntheticImage,
    embedding: EmbeddingModel,
    config: "MultiscaleConfig | None" = None,
) -> "tuple[np.ndarray, list[tuple[BoundingBox, int]]]":
    """Embed every patch of ``image``; returns (vectors, patch descriptors)."""
    patches = generate_patches(image.width, image.height, config)
    vectors = np.stack([embedding.embed_region(image, box) for box, _ in patches])
    return vectors, patches


def pool_image_scores(
    patch_scores: np.ndarray, patch_image_ids: np.ndarray
) -> "dict[int, float]":
    """Max-pool patch scores into per-image scores.

    This is the score an image receives at query time: the maximum score of
    any of its patches (§4.3).
    """
    patch_scores = np.asarray(patch_scores, dtype=np.float64)
    patch_image_ids = np.asarray(patch_image_ids)
    scores: dict[int, float] = {}
    for image_id, score in zip(patch_image_ids, patch_scores):
        image_id = int(image_id)
        current = scores.get(image_id)
        if current is None or score > current:
            scores[image_id] = float(score)
    return scores
