"""Numerical optimisation: a from-scratch L-BFGS used to minimise the SeeSaw loss."""

from repro.optim.lbfgs import LbfgsResult, lbfgs_minimize
from repro.optim.objective import Objective, numerical_gradient

__all__ = ["LbfgsResult", "lbfgs_minimize", "Objective", "numerical_gradient"]
