"""Objective-function protocol and gradient-checking helpers."""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

ValueAndGradient = Callable[[np.ndarray], tuple[float, np.ndarray]]


class Objective(Protocol):
    """A differentiable objective: maps a parameter vector to (value, gradient)."""

    def __call__(self, parameters: np.ndarray) -> tuple[float, np.ndarray]:
        """Return the objective value and its gradient at ``parameters``."""
        ...


def numerical_gradient(
    objective: ValueAndGradient, parameters: np.ndarray, step: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient estimate, used in tests to verify analytic
    gradients of the SeeSaw loss terms."""
    parameters = np.asarray(parameters, dtype=np.float64)
    gradient = np.zeros_like(parameters)
    for index in range(parameters.size):
        forward = parameters.copy()
        backward = parameters.copy()
        forward[index] += step
        backward[index] -= step
        value_forward, _ = objective(forward)
        value_backward, _ = objective(backward)
        gradient[index] = (value_forward - value_backward) / (2.0 * step)
    return gradient
