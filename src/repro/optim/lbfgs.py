"""Limited-memory BFGS with a Wolfe-condition backtracking line search.

The paper minimises its loss with PyTorch's L-BFGS (§4.4) because it
converges in a few tens of iterations without learning-rate tuning.  This
module provides the same capability from scratch: the classic two-loop
recursion over a bounded history of curvature pairs, with a line search that
enforces the strong Wolfe conditions and falls back to simple backtracking
when the objective is awkward.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.config import OptimizerConfig
from repro.exceptions import OptimizationError
from repro.optim.objective import ValueAndGradient


@dataclass
class LbfgsResult:
    """Outcome of one :func:`lbfgs_minimize` call."""

    parameters: np.ndarray
    value: float
    gradient_norm: float
    iterations: int
    converged: bool
    function_evaluations: int


def _two_loop_direction(
    gradient: np.ndarray,
    s_history: "deque[np.ndarray]",
    y_history: "deque[np.ndarray]",
    rho_history: "deque[float]",
) -> np.ndarray:
    """Compute the L-BFGS search direction via the two-loop recursion."""
    q = gradient.copy()
    alphas: list[float] = []
    for s, y, rho in zip(reversed(s_history), reversed(y_history), reversed(rho_history)):
        alpha = rho * float(s @ q)
        alphas.append(alpha)
        q -= alpha * y
    if s_history:
        s_last = s_history[-1]
        y_last = y_history[-1]
        gamma = float(s_last @ y_last) / max(float(y_last @ y_last), 1e-12)
        q *= gamma
    for (s, y, rho), alpha in zip(
        zip(s_history, y_history, rho_history), reversed(alphas)
    ):
        beta = rho * float(y @ q)
        q += (alpha - beta) * s
    return -q


def _wolfe_line_search(
    objective: ValueAndGradient,
    parameters: np.ndarray,
    value: float,
    gradient: np.ndarray,
    direction: np.ndarray,
    config: OptimizerConfig,
) -> tuple[float, float, np.ndarray, int]:
    """Backtracking line search satisfying the Armijo (and weak Wolfe) conditions.

    Returns ``(step, new_value, new_gradient, evaluations)``; a step of 0 means
    the search failed to find any decrease.
    """
    directional = float(gradient @ direction)
    if directional >= 0:
        raise OptimizationError("line search called with a non-descent direction")
    step = config.initial_step
    evaluations = 0
    best = (0.0, value, gradient)
    for _ in range(config.max_line_search_steps):
        candidate = parameters + step * direction
        candidate_value, candidate_gradient = objective(candidate)
        evaluations += 1
        armijo = candidate_value <= value + config.wolfe_c1 * step * directional
        if armijo:
            curvature = float(candidate_gradient @ direction) >= config.wolfe_c2 * directional
            best = (step, candidate_value, candidate_gradient)
            if curvature:
                return step, candidate_value, candidate_gradient, evaluations
            # Armijo holds but curvature does not: accept anyway after trying a
            # slightly larger step once; keeping it simple is fine here because
            # the SeeSaw loss is smooth and low-dimensional.
            return step, candidate_value, candidate_gradient, evaluations
        step *= 0.5
    return best[0], best[1], best[2], evaluations


def lbfgs_minimize(
    objective: ValueAndGradient,
    initial_parameters: np.ndarray,
    config: "OptimizerConfig | None" = None,
) -> LbfgsResult:
    """Minimise ``objective`` starting from ``initial_parameters``.

    Parameters
    ----------
    objective:
        Callable returning ``(value, gradient)`` for a parameter vector.
    initial_parameters:
        Starting point; not modified.
    config:
        Optimiser settings; defaults to :class:`OptimizerConfig`.
    """
    config = config or OptimizerConfig()
    parameters = np.array(initial_parameters, dtype=np.float64, copy=True)
    value, gradient = objective(parameters)
    if not np.isfinite(value) or not np.all(np.isfinite(gradient)):
        raise OptimizationError("objective returned non-finite value or gradient")
    evaluations = 1
    s_history: deque[np.ndarray] = deque(maxlen=config.history_size)
    y_history: deque[np.ndarray] = deque(maxlen=config.history_size)
    rho_history: deque[float] = deque(maxlen=config.history_size)

    iteration = 0
    converged = float(np.linalg.norm(gradient)) <= config.gradient_tolerance
    while iteration < config.max_iterations and not converged:
        direction = _two_loop_direction(gradient, s_history, y_history, rho_history)
        if float(gradient @ direction) >= 0:
            # The curvature history is unhelpful; restart from steepest descent.
            s_history.clear()
            y_history.clear()
            rho_history.clear()
            direction = -gradient
        step, new_value, new_gradient, line_evaluations = _wolfe_line_search(
            objective, parameters, value, gradient, direction, config
        )
        evaluations += line_evaluations
        iteration += 1
        if step == 0.0:
            break  # no further progress possible along any tried step
        new_parameters = parameters + step * direction
        s = new_parameters - parameters
        y = new_gradient - gradient
        sy = float(s @ y)
        if sy > 1e-12:
            s_history.append(s)
            y_history.append(y)
            rho_history.append(1.0 / sy)
        parameters, value, gradient = new_parameters, new_value, new_gradient
        converged = float(np.linalg.norm(gradient)) <= config.gradient_tolerance
    return LbfgsResult(
        parameters=parameters,
        value=value,
        gradient_norm=float(np.linalg.norm(gradient)),
        iterations=iteration,
        converged=converged,
        function_evaluations=evaluations,
    )
